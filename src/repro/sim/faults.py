"""Deterministic fault injection for the simulated node stack.

The paper's premise is unattended production operation, and production
nodes misbehave: the Node Manager energy counter occasionally stops
latching or drops to zero mid-job, RAPL's 32-bit counters wrap every
~22 minutes at 200 W (shorter than several of the paper's application
runs), performance-counter reads return garbage after an SMM excursion,
MSR writes fail transiently, and thermal events clamp the sustained
core clock below the programmed target.  This module models all five
fault channels behind one seeded, picklable :class:`FaultPlan`, so a
hostile node is just another reproducible experiment configuration.

Layering
--------

:class:`FaultPlan`
    A frozen description of fault *rates* (plus a seed).  Because it is
    a plain compare-by-field dataclass it participates directly in the
    run cache's content hash — a cached clean run can never be returned
    for a faulted request and vice versa.

:class:`FaultInjector`
    One per node per run.  Owns its own ``numpy`` generator seeded from
    ``(plan.seed, run seed, node id)``, so two executions of the same
    request inject the identical fault schedule, independent of the
    engine's noise RNG (the clean-path iteration noise stream is never
    perturbed).  Every injected event is recorded in the shared
    :class:`HealthMonitor` ledger.

:class:`HealthMonitor` / :class:`NodeHealth`
    The mutable per-node tally shared by the injector, EARD and EARL
    during a run, and its frozen end-of-run snapshot attached to
    :class:`~repro.sim.result.NodeResult`.  The counters split into
    what was *injected* (the schedule) and how the runtime *reacted*
    (rejections, retries, watchdog restores, time in degraded mode), so
    tests can check the two sides against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

from ..errors import ExperimentError, TransientMsrError
from ..telemetry.recorder import NULL_RECORDER, Recorder
from ..workloads.phase import IterationCounters

__all__ = ["FaultPlan", "FaultInjector", "HealthMonitor", "NodeHealth"]

#: Raw-tick jump of one RAPL wrap-storm event: just under a full wrap,
#: so a naive raw-sum reader goes backwards while the wrap-aware delta
#: reader absorbs it as one bounded (spurious) increment.
_WRAP_STORM_TICKS = (1 << 32) - (1 << 20)

_RATE_FIELDS = (
    "meter_stall_rate",
    "meter_dropout_rate",
    "counter_corruption_rate",
    "msr_failure_rate",
    "rapl_wrap_rate",
    "throttle_rate",
)

#: Infrastructure (control-plane) channels: they perturb the *cluster*
#: — node crashes, daemon restarts — never the physics of a single
#: job's run, so they are ``compare=False`` and invisible to the run
#: cache's content hash.
_INFRA_RATE_FIELDS = (
    "node_crash_rate",
    "eardbd_restart_rate",
)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the fault regime of one run.

    All rates are per-opportunity Bernoulli probabilities: meter faults
    per energy read, counter corruption / wrap storms / throttle onsets
    per application iteration, MSR faults per privileged write batch.
    The all-zero default plan is inert — the engine skips the injector
    entirely, keeping the clean path bit-identical to no plan at all.
    """

    seed: int = 0
    #: probability per DC-energy read that the meter enters a stall
    #: (returns the stale latched value for ``meter_stall_reads`` reads).
    meter_stall_rate: float = 0.0
    meter_stall_reads: int = 4
    #: probability per DC-energy read of a dropout (counter reads zero).
    meter_dropout_rate: float = 0.0
    #: probability per iteration that EARL's counter sample is corrupted
    #: (NaN / zeroed / outlier CPI·GB/s — chosen uniformly).
    counter_corruption_rate: float = 0.0
    #: probability per privileged MSR write batch of a transient failure
    #: burst of 1..``msr_failure_burst`` consecutive attempts.
    msr_failure_rate: float = 0.0
    msr_failure_burst: int = 2
    #: probability per iteration of a RAPL wrap storm (phantom near-wrap
    #: jump of every package counter's raw value).
    rapl_wrap_rate: float = 0.0
    #: probability per iteration that a thermal-throttle clamp begins.
    throttle_rate: float = 0.0
    throttle_duration_s: float = 8.0
    throttle_ghz: float = 1.6
    # -- infrastructure (control-plane) channels ------------------------------
    # All compare=False: they drive the cluster control plane (node
    # crashes, daemon restarts), not the per-job physics, so a plan
    # carrying only infra rates canonicalises like no plan at all and
    # the run-cache key shape is unchanged (no CACHE_FORMAT_VERSION
    # bump needed).
    #: probability per node-second (approximated per job-node) that a
    #: node crashes mid-job in the cluster simulation.
    node_crash_rate: float = field(default=0.0, compare=False)
    #: how long a crashed node stays down before rejoining the free pool.
    node_reboot_s: float = field(default=120.0, compare=False)
    #: how many times the cluster requeues a crash-killed job before
    #: recording it as failed.
    job_max_retries: int = field(default=2, compare=False)
    #: probability per flush tick that the EARDBD daemon restarts
    #: (buffered reports replayed from its WAL, the flush skipped).
    eardbd_restart_rate: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS + _INFRA_RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ExperimentError(f"{name}={rate} outside [0, 1]")
        if self.meter_stall_reads < 1:
            raise ExperimentError("meter_stall_reads must be >= 1")
        if self.msr_failure_burst < 1:
            raise ExperimentError("msr_failure_burst must be >= 1")
        if self.throttle_duration_s <= 0:
            raise ExperimentError("throttle_duration_s must be positive")
        if self.throttle_ghz <= 0:
            raise ExperimentError("throttle_ghz must be positive")
        if self.node_reboot_s <= 0:
            raise ExperimentError("node_reboot_s must be positive")
        if self.job_max_retries < 0:
            raise ExperimentError("job_max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        """True when any *hardware* fault channel can fire.

        Deliberately excludes the infrastructure channels: the per-job
        engine consults ``enabled`` to decide whether to build an
        injector, and infra faults never reach the engine.
        """
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @property
    def infra_enabled(self) -> bool:
        """True when any control-plane (cluster) channel can fire."""
        return any(getattr(self, name) > 0.0 for name in _INFRA_RATE_FIELDS)

    def scaled(self, factor: float) -> "FaultPlan":
        """Copy with every rate multiplied by ``factor`` (clamped to 1).

        Scales the hardware and the infrastructure rates alike, so a
        resilience sweep turns one reference plan's intensity knob for
        both domains.
        """
        if factor < 0:
            raise ExperimentError("fault scale factor cannot be negative")
        return replace(
            self,
            **{
                name: min(1.0, getattr(self, name) * factor)
                for name in _RATE_FIELDS + _INFRA_RATE_FIELDS
            },
        )


# -- health accounting --------------------------------------------------------


@dataclass(frozen=True)
class NodeHealth:
    """End-of-run robustness record of one node.

    The first block counts what the injector *did*; the second how the
    hardened runtime *reacted*.  ``degraded_s`` is the simulated time
    the node spent running policy-default frequencies because the
    watchdog fired or the policy was disabled.
    """

    # injected schedule
    meter_stalls: int = 0
    meter_dropouts: int = 0
    counter_corruptions: int = 0
    msr_failures_injected: int = 0
    rapl_wrap_storms: int = 0
    throttle_events: int = 0
    # runtime reactions
    samples_rejected: int = 0
    windows_rejected: int = 0
    windows_stalled: int = 0
    msr_retries: int = 0
    msr_apply_failures: int = 0
    policy_failures: int = 0
    watchdog_restores: int = 0
    degraded_s: float = 0.0

    @property
    def faults_injected(self) -> int:
        """Total fault events scheduled by the injector."""
        return (
            self.meter_stalls
            + self.meter_dropouts
            + self.counter_corruptions
            + self.msr_failures_injected
            + self.rapl_wrap_storms
            + self.throttle_events
        )

    @property
    def clean(self) -> bool:
        """True when nothing was injected and nothing was rejected."""
        return all(
            getattr(self, f.name) == 0 for f in fields(self)
        )

    @classmethod
    def merge(cls, healths: "list[NodeHealth] | tuple[NodeHealth, ...]") -> "NodeHealth":
        """Element-wise sum over nodes (job-level view)."""
        if not healths:
            return cls()
        return cls(
            **{
                f.name: sum(getattr(h, f.name) for h in healths)
                for f in fields(cls)
            }
        )


class HealthMonitor:
    """Mutable per-node tally shared by injector, EARD and EARL."""

    def __init__(self) -> None:
        self.meter_stalls = 0
        self.meter_dropouts = 0
        self.counter_corruptions = 0
        self.msr_failures_injected = 0
        self.rapl_wrap_storms = 0
        self.throttle_events = 0
        self.samples_rejected = 0
        self.windows_rejected = 0
        self.windows_stalled = 0
        self.msr_retries = 0
        self.msr_apply_failures = 0
        self.policy_failures = 0
        self.watchdog_restores = 0
        self.degraded_s = 0.0
        self._degraded_since: float | None = None

    # -- degraded-mode span tracking ------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the node is in watchdog-degraded mode."""
        return self._degraded_since is not None

    def enter_degraded(self, at_s: float) -> None:
        """Mark the node degraded from the given simulated time."""
        if self._degraded_since is None:
            self._degraded_since = at_s

    def exit_degraded(self, at_s: float) -> None:
        """Leave degraded mode, accumulating the degraded interval."""
        if self._degraded_since is not None:
            self.degraded_s += max(0.0, at_s - self._degraded_since)
            self._degraded_since = None

    def finish(self, at_s: float) -> None:
        """Close any open degraded span at the end of the run."""
        self.exit_degraded(at_s)

    def snapshot(self) -> NodeHealth:
        """Freeze the health tallies into a NodeHealth record."""
        return NodeHealth(
            **{f.name: getattr(self, f.name) for f in fields(NodeHealth)}
        )


# -- the injector -------------------------------------------------------------


class FaultInjector:
    """Executes one node's share of a :class:`FaultPlan`.

    Deterministic: the schedule depends only on ``(plan.seed, run_seed,
    node_id)`` and the (deterministic) sequence of hook calls, never on
    wall clock or the engine's noise RNG.  Hooks are cheap no-draw
    passthroughs for channels whose rate is zero, so a plan exercising
    one channel leaves the others' statistics untouched.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        run_seed: int,
        node_id: int,
        health: HealthMonitor,
        telemetry: Recorder = NULL_RECORDER,
    ) -> None:
        self.plan = plan
        self.health = health
        #: event sink; never consulted for randomness, so arming it
        #: cannot perturb the fault schedule.
        self.telemetry = telemetry
        self._rng = np.random.default_rng(
            np.random.SeedSequence([plan.seed & 0xFFFFFFFF, run_seed & 0xFFFFFFFF, node_id])
        )
        self._stalled_reads_left = 0
        self._stale_reading = None
        self._msr_burst_left = 0
        self._throttle_until_s = -1.0

    # -- engine hooks (per iteration) ------------------------------------------

    def on_iteration_start(self, node) -> None:
        """Draw the per-iteration events: wrap storms and throttle onsets."""
        plan = self.plan
        if plan.rapl_wrap_rate > 0 and self._rng.random() < plan.rapl_wrap_rate:
            self.health.rapl_wrap_storms += 1
            if self.telemetry.enabled:
                self.telemetry.event("faults", "rapl_wrap_storm")
            for counter in node.rapl.pck:
                counter.inject_raw_jump(_WRAP_STORM_TICKS)
        if (
            plan.throttle_rate > 0
            and node.elapsed_s >= self._throttle_until_s
            and self._rng.random() < plan.throttle_rate
        ):
            self.health.throttle_events += 1
            self._throttle_until_s = node.elapsed_s + plan.throttle_duration_s
            if self.telemetry.enabled:
                self.telemetry.event(
                    "faults",
                    "throttle_start",
                    until_s=self._throttle_until_s,
                    clamp_ghz=plan.throttle_ghz,
                )

    def throttle_clamp_ghz(self, now_s: float) -> float | None:
        """Active thermal clamp for the iteration starting at ``now_s``."""
        if now_s < self._throttle_until_s:
            return self.plan.throttle_ghz
        return None

    def corrupt_counters(self, counters: IterationCounters) -> IterationCounters:
        """Possibly corrupt the counter sample EARL is about to see.

        Ground truth (the engine's own banks, the energy integrators) is
        never touched — this models a bad *read*, not bad silicon.
        """
        plan = self.plan
        if plan.counter_corruption_rate <= 0:
            return counters
        if self._rng.random() >= plan.counter_corruption_rate:
            return counters
        self.health.counter_corruptions += 1
        mode = int(self._rng.integers(0, 3))
        if self.telemetry.enabled:
            self.telemetry.event("faults", "counter_corruption", mode=mode)
        if mode == 0:  # NaN burst: the PAPI read returned garbage
            return replace(counters, instructions=float("nan"), cycles=float("nan"))
        if mode == 1:  # zeroed sample: counters reset under us
            return replace(counters, instructions=0.0, cycles=0.0, avx512_instructions=0.0)
        # outlier: impossible CPI / GB/s spike
        factor = float(self._rng.uniform(200.0, 2000.0))
        return replace(
            counters,
            cycles=counters.cycles * factor,
            bytes_transferred=counters.bytes_transferred * factor,
        )

    # -- sensor hooks (called by EARD) ----------------------------------------

    def filter_energy_reading(self, reading):
        """Possibly stall or drop the Node Manager energy reading."""
        plan = self.plan
        if self._stalled_reads_left > 0:
            self._stalled_reads_left -= 1
            return self._stale_reading if self._stale_reading is not None else reading
        if plan.meter_stall_rate > 0 and self._rng.random() < plan.meter_stall_rate:
            self.health.meter_stalls += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "faults", "meter_stall", reads=plan.meter_stall_reads
                )
            self._stalled_reads_left = plan.meter_stall_reads - 1
            self._stale_reading = reading
            return reading
        if plan.meter_dropout_rate > 0 and self._rng.random() < plan.meter_dropout_rate:
            self.health.meter_dropouts += 1
            if self.telemetry.enabled:
                self.telemetry.event("faults", "meter_dropout")
            return type(reading)(joules=0.0, timestamp_s=reading.timestamp_s)
        self._stale_reading = reading
        return reading

    # -- MSR hooks (called by EARD) -------------------------------------------

    def check_msr_write(self) -> None:
        """Raise :class:`TransientMsrError` when a write attempt fails.

        Failures arrive in bursts of 1..``msr_failure_burst`` attempts,
        so a retry loop deeper than the burst always recovers.
        """
        plan = self.plan
        if self._msr_burst_left > 0:
            self._msr_burst_left -= 1
            self.health.msr_failures_injected += 1
            if self.telemetry.enabled:
                self.telemetry.event("faults", "msr_failure")
            raise TransientMsrError("injected transient MSR write failure")
        if plan.msr_failure_rate > 0 and self._rng.random() < plan.msr_failure_rate:
            self._msr_burst_left = int(self._rng.integers(1, plan.msr_failure_burst + 1)) - 1
            self.health.msr_failures_injected += 1
            if self.telemetry.enabled:
                self.telemetry.event("faults", "msr_failure")
            raise TransientMsrError("injected transient MSR write failure")
