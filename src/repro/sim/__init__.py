"""Discrete-event simulation engine: workloads on clusters, with EARL."""

from ..hw.counters import CounterBank, CounterSnapshot
from .engine import DEFAULT_NOISE_SIGMA, SimulationEngine, run_workload
from .faults import FaultInjector, FaultPlan, HealthMonitor, NodeHealth
from .result import FrequencySample, NodeResult, RunResult

__all__ = [
    "CounterBank",
    "CounterSnapshot",
    "SimulationEngine",
    "run_workload",
    "DEFAULT_NOISE_SIGMA",
    "FaultInjector",
    "FaultPlan",
    "HealthMonitor",
    "NodeHealth",
    "FrequencySample",
    "NodeResult",
    "RunResult",
]
