"""Run results: what one simulated job execution produced.

The result carries both what EAR itself could see (signatures, policy
decisions) and the harness ground truth (exact energies, time-weighted
average frequencies) used to build the paper's tables.  ``to_dict`` /
``to_json`` export everything for external analysis tooling.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..ear.earl import PolicyDecision
from ..ear.signature import Signature
from ..telemetry.recorder import NodeTelemetry, TelemetryEvent, merge_events
from .faults import NodeHealth

__all__ = ["NodeResult", "RunResult", "FrequencySample"]


@dataclass(frozen=True)
class FrequencySample:
    """One point of the frequency trace (node 0)."""

    at_s: float
    cpu_target_ghz: float
    imc_freq_ghz: float


@dataclass(frozen=True)
class NodeResult:
    """Ground-truth per-node outcome."""

    node_id: int
    dc_energy_j: float
    pck_energy_j: float
    avg_cpu_freq_ghz: float
    avg_imc_freq_ghz: float
    #: this node's own elapsed time (its simulated clock at job end).
    #: Bulk-synchronous codes end every node at the job wall time, but
    #: accounting divides *this node's* energy by *this node's* seconds,
    #: so per-node power stays correct if the two ever diverge.
    seconds: float = 0.0
    #: whole-run aggregate counters (the paper's per-kernel CPI / GB/s).
    cpi: float = 0.0
    gbs: float = 0.0
    #: robustness record: faults injected and how the runtime reacted
    #: (all-zero on a clean run).
    health: NodeHealth | None = None
    #: structured telemetry snapshot (None when the run was executed
    #: with the default NullRecorder).
    telemetry: NodeTelemetry | None = None


@dataclass(frozen=True)
class RunResult:
    """Outcome of one job execution."""

    workload: str
    n_nodes: int
    policy: str
    seed: int
    #: job wall time (max over nodes, i.e. including barrier waits).
    time_s: float
    nodes: tuple[NodeResult, ...]
    #: node-0 EARL traces (empty for no-policy runs).
    signatures: tuple[Signature, ...] = ()
    decisions: tuple[PolicyDecision, ...] = ()
    freq_trace: tuple[FrequencySample, ...] = field(default=(), repr=False)
    #: silicon frequency ranges of the run's node type — (lo, hi) GHz —
    #: so renderers scale axes to the hardware, not to hardcoded bounds.
    cpu_freq_range_ghz: tuple[float, float] | None = None
    imc_freq_range_ghz: tuple[float, float] | None = None

    @property
    def dc_energy_j(self) -> float:
        """Total DC energy over all nodes."""
        return sum(n.dc_energy_j for n in self.nodes)

    @property
    def pck_energy_j(self) -> float:
        """Total package (RAPL PCK scope) energy over all nodes."""
        return sum(n.pck_energy_j for n in self.nodes)

    @property
    def avg_dc_power_w(self) -> float:
        """Average DC power per node (the paper's reporting unit)."""
        if self.time_s <= 0 or not self.nodes:
            return 0.0
        return self.dc_energy_j / self.time_s / len(self.nodes)

    @property
    def avg_pck_power_w(self) -> float:
        """Average RAPL package power per node."""
        if self.time_s <= 0 or not self.nodes:
            return 0.0
        return self.pck_energy_j / self.time_s / len(self.nodes)

    @property
    def avg_cpu_freq_ghz(self) -> float:
        """Run-average effective core frequency (node 0)."""
        return sum(n.avg_cpu_freq_ghz for n in self.nodes) / len(self.nodes)

    @property
    def avg_imc_freq_ghz(self) -> float:
        """Run-average uncore frequency (node 0)."""
        return sum(n.avg_imc_freq_ghz for n in self.nodes) / len(self.nodes)

    @property
    def health(self) -> NodeHealth:
        """Job-level robustness record: node healths summed."""
        return NodeHealth.merge([n.health for n in self.nodes if n.health is not None])

    # -- telemetry ------------------------------------------------------

    @property
    def has_telemetry(self) -> bool:
        """True when the run was executed with telemetry recording on."""
        return any(n.telemetry is not None for n in self.nodes)

    @property
    def events(self) -> tuple[TelemetryEvent, ...]:
        """All nodes' telemetry events merged into one timeline."""
        return merge_events(n.telemetry for n in self.nodes if n.telemetry is not None)

    @property
    def cpi(self) -> float:
        """Run-aggregate CPI averaged over nodes."""
        return sum(n.cpi for n in self.nodes) / len(self.nodes)

    @property
    def gbs(self) -> float:
        """Run-aggregate per-node memory bandwidth, GB/s."""
        return sum(n.gbs for n in self.nodes) / len(self.nodes)

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data view of the run (JSON-serialisable)."""
        return {
            "workload": self.workload,
            "n_nodes": self.n_nodes,
            "policy": self.policy,
            "seed": self.seed,
            "time_s": self.time_s,
            "dc_energy_j": self.dc_energy_j,
            "pck_energy_j": self.pck_energy_j,
            "avg_dc_power_w": self.avg_dc_power_w,
            "avg_cpu_freq_ghz": self.avg_cpu_freq_ghz,
            "avg_imc_freq_ghz": self.avg_imc_freq_ghz,
            "health": asdict(self.health),
            "cpu_freq_range_ghz": self.cpu_freq_range_ghz,
            "imc_freq_range_ghz": self.imc_freq_range_ghz,
            # per-node telemetry is exported once, merged, under "events"
            "nodes": [
                {k: v for k, v in asdict(n).items() if k != "telemetry"}
                for n in self.nodes
            ],
            "events": [e.to_dict() for e in self.events],
            "signatures": [asdict(s) for s in self.signatures],
            "decisions": [
                {
                    "at_s": d.at_s,
                    "earl_state": d.earl_state.name,
                    "policy_state": d.policy_state.name if d.policy_state else None,
                    "freqs": asdict(d.freqs) if d.freqs else None,
                    "signature": asdict(d.signature),
                }
                for d in self.decisions
            ],
            "freq_trace": [asdict(s) for s in self.freq_trace],
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """JSON-serialisable summary of the run."""
        return json.dumps(self.to_dict(), indent=indent)
