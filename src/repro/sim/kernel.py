"""Batched numpy simulation kernel.

The scalar engine (:mod:`repro.sim.engine`) evaluates one iteration per
node per Python-level loop step: per iteration it re-runs the hardware
UFS controller, the RAPL power-cap descent, the time model and the
power model, even though *nothing changes between frequency decisions*
— the MSR state the physics depends on is only touched by EARD at
measurement-window boundaries (every ≥10 s of simulated time), by pins
before the run, or by injected faults.  Between those events the
per-iteration physics of a node is one deterministic number ``t_det``
scaled by the iteration's noise draw, and its energy is affine in time.

This module exploits that:

* :class:`NodePhysics` is a *plan*: everything one node's iterations
  need, computed once — deterministic iteration time, effective clocks,
  per-socket zero-traffic powers and per-iteration traffic energies
  (node power is exactly affine in traffic and traffic is
  ``bytes / t``, so the traffic term is a time-invariant energy per
  iteration), spin-wait powers, counter increments.
* The **vectorized path** handles runs with no EARL, no fault injector
  and no telemetry (frequency sweeps, learning grids, the cluster
  scheduler's workhorse runs): a whole phase collapses into a
  ``(n_iterations, n_nodes)`` numpy block — times, barrier walls and
  spin-wait splits in a handful of array ops, then *one* energy commit
  per node per phase.
* The **committed path** handles runs with EARL/EARD, faults or
  telemetry: plans are cached per (node, throttle-clamp) and replayed
  per iteration, with results committed to the sensors every iteration
  so the scalar EARL/EARD code observes exactly the state it would
  under the scalar engine (windows close on the same iteration, RAPL
  polls see at most one wrap, fault onsets compare against the same
  node clock).  Plans are invalidated by the sockets'
  :attr:`~repro.hw.msr.MsrFile.write_generation`, so any EARD frequency
  decision, EPB change or power-cap write rebuilds the physics.

Decisions stay scalar by design: EARL's state machine, DynAIS and the
policies are control-flow-heavy, run once per ≥10 s window, and are the
code under test — vectorising them would fork the reference
implementation the equivalence gate pins against.

Equivalence contract (``tests/sim/test_kernel_equivalence.py``):
iteration times are *bit-identical* to the scalar engine (same RNG
draws, same deterministic time expression), so window boundaries and
policy decisions match; energies differ only by floating-point
reassociation, within 1e-9 relative.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from ..workloads.phase import IterationCounters, PhaseProfile
from .result import FrequencySample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hw.node import Node
    from .engine import SimulationEngine

__all__ = ["NodePhysics", "BatchedKernel"]


@dataclass(frozen=True)
class NodePhysics:
    """Precomputed per-iteration physics of one node under fixed MSRs.

    Valid as long as the node's MSR state (and the phase profile) is
    unchanged; energies are stored as ``power * t + traffic_energy``
    pieces so any iteration time can be priced without re-entering the
    power model.
    """

    #: deterministic (noise-free) iteration time, seconds.
    t_det: float
    #: sustained core clock during compute, GHz (post licence/cap).
    eff_compute_ghz: float
    #: sustained core clock while spinning at the barrier, GHz.
    eff_wait_ghz: float
    #: active application cores, per socket and total.
    n_active_per_socket: tuple[int, ...]
    n_active_total: int
    #: uncore ratios the UFS controller converged to for this plan.
    uncore_ratios: tuple[int, ...]
    #: compute-segment power at zero traffic, per domain.
    pck_w0: tuple[float, ...]
    dram_w0: float
    dc_w0: float
    #: time-invariant traffic energy per iteration, per domain, joules.
    pck_traffic_j: tuple[float, ...]
    dram_traffic_j: float
    dc_traffic_j: float
    #: spin-wait power (no traffic), per domain.
    pck_w_wait: tuple[float, ...]
    dram_w_wait: float
    dc_w_wait: float
    #: per-iteration counter increments (time-invariant).
    instructions: float
    nbytes: float
    avx512: float


class BatchedKernel:
    """Numpy inner loop for one :class:`SimulationEngine` run."""

    def __init__(self, engine: "SimulationEngine") -> None:
        self._engine = engine
        #: node_id -> (msr write generation, {clamp_ghz: plan})
        self._plans: dict[int, tuple[int, dict[float | None, NodePhysics]]] = {}

    # -- entry point -------------------------------------------------------

    def run_phases(self) -> None:
        """Execute every workload phase through the batched paths."""
        eng = self._engine
        vectorizable = (
            not eng.earls and not eng.injectors and not eng.telemetry_enabled
        )
        for profile, n_iterations in eng.workload.phases:
            self._plans.clear()  # plans are per-profile
            if vectorizable:
                self._run_phase_vectorized(profile, n_iterations)
            else:
                self._run_phase_committed(profile, n_iterations)

    # -- noise -------------------------------------------------------------

    def _phase_noise(self, n_iters: int, n_nodes: int) -> np.ndarray:
        """The phase's noise block, drawn exactly like the scalar engine.

        ``normal(size=(k, n))`` consumes the generator identically to
        ``k`` sequential ``normal(size=n)`` draws, so the block's rows
        are bit-for-bit the factors the scalar loop would apply — and a
        run switched between engines mid-way would stay aligned.
        """
        eng = self._engine
        if eng.noise_sigma == 0:
            block = np.ones((n_iters, n_nodes))
        else:
            block = np.exp(
                eng._rng.normal(0.0, eng.noise_sigma, size=(n_iters, n_nodes))
            )
        return block * eng._node_slowdown[None, :]

    # -- plan construction -------------------------------------------------

    def _physics(
        self, node: "Node", profile: PhaseProfile, clamp_ghz: float | None
    ) -> NodePhysics:
        """Run the scalar per-iteration physics once and freeze the result.

        Mirrors :meth:`PhaseProfile.execute_iteration` step for step
        (licence clamp, UFS convergence, RAPL cap descent, time model)
        minus the noise factor and the sensor commits, so ``t_det``
        is the exact multiplier the scalar engine would compute.
        """
        ref_core = profile._reference_effective_ghz(node)
        eff = node.sockets[0].effective_freq_ghz(profile.vpi)
        if clamp_ghz is not None:
            eff = min(eff, clamp_ghz)
        op = profile.operating_point(node, effective_core_ghz=eff)
        node.run_ufs(op)
        f_unc = node.uncore_freq_ghz
        eff = profile._power_capped_ghz(node, eff, f_unc, ref_core_ghz=ref_core)
        op = replace(op, effective_core_ghz=eff)
        t_det = profile.iteration_time_s(
            f_core_ghz=eff,
            f_uncore_ghz=f_unc,
            ref_core_ghz=ref_core,
            ref_uncore_ghz=profile.ref_uncore_ghz(node),
            dram=node.config.dram,
        )
        nbytes = profile.bytes_per_iteration()
        p0, pck_slopes, dram_slope = node.power_affine(op)
        gb = nbytes / 1e9
        # spin-wait segment: MPI runtime spinning, no vector work, no traffic.
        from .engine import _WAIT_ACTIVITY_FACTOR

        eff_wait = node.sockets[0].effective_freq_ghz(0.0)
        op_wait = replace(
            profile.operating_point(node, effective_core_ghz=eff_wait),
            activity=profile.activity * _WAIT_ACTIVITY_FACTOR,
            traffic_gbs=0.0,
            vpi=0.0,
        )
        p_wait = node.power(op_wait)
        n_cores = node.config.n_cores
        active = (
            profile.n_active_cores if profile.n_active_cores is not None else n_cores
        )
        instr = profile.instructions_per_iteration(
            ref_core_ghz=ref_core, n_cores=n_cores
        )
        return NodePhysics(
            t_det=t_det,
            eff_compute_ghz=eff,
            eff_wait_ghz=eff_wait,
            n_active_per_socket=node.active_cores_per_socket(active),
            n_active_total=active,
            uncore_ratios=tuple(
                d.current_ratio for s in node.sockets for d in s.dies
            ),
            pck_w0=p0.pck_w,
            dram_w0=p0.dram_w,
            dc_w0=p0.dc_w,
            pck_traffic_j=tuple(s * gb for s in pck_slopes),
            dram_traffic_j=dram_slope * gb,
            dc_traffic_j=(sum(pck_slopes) + dram_slope) * gb,
            pck_w_wait=p_wait.pck_w,
            dram_w_wait=p_wait.dram_w,
            dc_w_wait=p_wait.dc_w,
            instructions=instr,
            nbytes=nbytes,
            avx512=profile.vpi * instr,
        )

    def _plan_for(
        self, node: "Node", profile: PhaseProfile, clamp_ghz: float | None
    ) -> NodePhysics:
        """Fetch (or rebuild) the node's plan for the current MSR state.

        Any successful MSR write on any of the node's sockets — an EARD
        frequency decision, an EPB or power-limit change — bumps the
        sockets' ``write_generation`` and drops every cached plan for
        the node.  Reusing a cached plan restores the uncore ratios the
        plan's UFS convergence produced, exactly as the scalar engine's
        per-iteration ``run_ufs`` call would.
        """
        # non-MSR backends (sysfs/TPMI) bypass the MSR file, so their
        # own write counter joins the invalidation tag; MsrBackend
        # leaves it at zero and the tag reduces to the pre-backend sum.
        gen = node.uncore_backend.write_generation
        for s in node.sockets:
            gen += s.msr.write_generation
        cached_gen, by_clamp = self._plans.get(node.node_id, (-1, {}))
        if cached_gen != gen:
            by_clamp = {}
            self._plans[node.node_id] = (gen, by_clamp)
        plan = by_clamp.get(clamp_ghz)
        if plan is None:
            plan = self._physics(node, profile, clamp_ghz)
            by_clamp[clamp_ghz] = plan
        else:
            dies = [d for s in node.sockets for d in s.dies]
            for dom, ratio in zip(dies, plan.uncore_ratios):
                if dom.current_ratio != ratio:
                    dom.set_ratio(ratio)
        return plan

    # -- energy commits ----------------------------------------------------

    @staticmethod
    def _commit_compute(node: "Node", plan: NodePhysics, seconds: float, n_iters: int) -> None:
        """Price ``n_iters`` compute segments totalling ``seconds``."""
        node.advance_energy(
            pck_j=[
                w0 * seconds + n_iters * tj
                for w0, tj in zip(plan.pck_w0, plan.pck_traffic_j)
            ],
            dram_j=plan.dram_w0 * seconds + n_iters * plan.dram_traffic_j,
            dc_j=plan.dc_w0 * seconds + n_iters * plan.dc_traffic_j,
            n_active_per_socket=plan.n_active_per_socket,
            effective_ghz=plan.eff_compute_ghz,
            seconds=seconds,
        )

    @staticmethod
    def _commit_wait(node: "Node", plan: NodePhysics, seconds: float) -> None:
        """Price barrier-wait time (constant power, no traffic)."""
        node.advance_energy(
            pck_j=[w * seconds for w in plan.pck_w_wait],
            dram_j=plan.dram_w_wait * seconds,
            dc_j=plan.dc_w_wait * seconds,
            n_active_per_socket=plan.n_active_per_socket,
            effective_ghz=plan.eff_wait_ghz,
            seconds=seconds,
        )

    # -- vectorized path ---------------------------------------------------

    def _run_phase_vectorized(self, profile: PhaseProfile, n_iters: int) -> None:
        """Whole phase as one (iterations, nodes) block; one flush per node.

        Preconditions (checked by :meth:`run_phases`): no EARL, no fault
        injector, no telemetry.  Then no MSR changes mid-phase, every
        iteration of a node shares one plan, and nothing observes the
        sensors between iterations — so the phase's energy and
        accounting collapse to closed-form sums.
        """
        eng = self._engine
        n_nodes = len(eng.cluster)
        noises = self._phase_noise(n_iters, n_nodes)
        plans = [self._plan_for(node, profile, None) for node in eng.cluster]
        t_det = np.array([p.t_det for p in plans])
        t = noises * t_det[None, :]
        t_wall = t.max(axis=1)
        wait = t_wall[:, None] - t
        # the scalar loop skips sub-picosecond waits entirely
        wait[wait <= 1e-12] = 0.0
        walls_cum = np.cumsum(t_wall)
        total_wall = float(walls_cum[-1])
        for j, (node, plan) in enumerate(zip(eng.cluster, plans)):
            st = float(t[:, j].sum())
            sw = float(wait[:, j].sum())
            self._commit_compute(node, plan, st, n_iters)
            if sw > 0.0:
                self._commit_wait(node, plan, sw)
            eng.banks[node.node_id].add_bulk(
                iterations=n_iters,
                wall_seconds=total_wall,
                instructions=n_iters * plan.instructions,
                cycles=plan.eff_compute_ghz * 1e9 * plan.n_active_total * st,
                bytes_transferred=n_iters * plan.nbytes,
                avx512_instructions=n_iters * plan.avx512,
            )
        if eng.record_trace:
            node0 = eng.cluster.nodes[0]
            cpu_t = node0.core_target_ghz
            imc = node0.uncore_freq_ghz
            base = eng._time_s
            for w in walls_cum:
                eng._trace.append(
                    FrequencySample(
                        at_s=base + float(w),
                        cpu_target_ghz=cpu_t,
                        imc_freq_ghz=imc,
                    )
                )
        eng._time_s += total_wall

    # -- committed path ----------------------------------------------------

    def _run_phase_committed(self, profile: PhaseProfile, n_iters: int) -> None:
        """Plan-replay loop: physics from cache, sensors committed per
        iteration so EARL/EARD and the fault layer observe scalar state.
        """
        eng = self._engine
        nodes = eng.cluster.nodes
        n_nodes = len(nodes)
        noises = self._phase_noise(n_iters, n_nodes)
        for i in range(n_iters):
            row = noises[i]
            cur: list[NodePhysics] = []
            t_row = np.empty(n_nodes)
            for j, node in enumerate(nodes):
                injector = eng.injectors.get(node.node_id)
                clamp = None
                if injector is not None:
                    injector.on_iteration_start(node)
                    clamp = injector.throttle_clamp_ghz(node.elapsed_s)
                plan = self._plan_for(node, profile, clamp)
                cur.append(plan)
                t_row[j] = plan.t_det * row[j]
            t_wall = float(t_row.max())
            for j, node in enumerate(nodes):
                plan = cur[j]
                t = float(t_row[j])
                self._commit_compute(node, plan, t, 1)
                wait = t_wall - t
                if wait > 1e-12:
                    self._commit_wait(node, plan, wait)
                c = IterationCounters(
                    seconds=t,
                    instructions=plan.instructions,
                    cycles=t * plan.eff_compute_ghz * 1e9 * plan.n_active_total,
                    bytes_transferred=plan.nbytes,
                    avx512_instructions=plan.avx512,
                )
                eng.banks[node.node_id].add_iteration(c, wall_seconds=t_wall)
                earl = eng.earls.get(node.node_id)
                if earl is not None:
                    injector = eng.injectors.get(node.node_id)
                    seen = c if injector is None else injector.corrupt_counters(c)
                    earl.on_iteration(seen, profile.mpi_events, t_wall)
            eng._time_s += t_wall
            if eng.telemetry_enabled:
                for node in nodes:
                    rec = eng.recorders[node.node_id]
                    rec.observe("engine.iteration_s", t_wall)
                    rec.event(
                        "engine",
                        "freq_sample",
                        cpu_target_ghz=node.core_target_ghz,
                        imc_freq_ghz=node.uncore_freq_ghz,
                    )
            if eng.record_trace:
                node0 = nodes[0]
                eng._trace.append(
                    FrequencySample(
                        at_s=eng._time_s,
                        cpu_target_ghz=node0.core_target_ghz,
                        imc_freq_ghz=node0.uncore_freq_ghz,
                    )
                )
