"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so a
caller can catch everything from this package with one ``except`` clause.
The subclasses mirror the architectural layers:

* hardware simulation problems (:class:`HardwareError` and friends),
* EAR runtime / policy problems (:class:`EarError` and friends),
* experiment harness problems (:class:`ExperimentError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HardwareError",
    "MsrError",
    "MsrPermissionError",
    "TransientMsrError",
    "UnknownMsrError",
    "FrequencyError",
    "EarError",
    "PolicyError",
    "ModelError",
    "SignatureError",
    "ConfigError",
    "ExperimentError",
    "LearningError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class HardwareError(ReproError):
    """A problem in the simulated hardware layer."""


class MsrError(HardwareError):
    """A problem accessing the simulated MSR register file."""


class MsrPermissionError(MsrError):
    """An MSR write was attempted without privileged access.

    On a real system only root (or the EAR daemon) may write MSRs such as
    ``UNCORE_RATIO_LIMIT``; the simulation enforces the same rule so that
    the EARL/EARD privilege split stays honest.
    """


class UnknownMsrError(MsrError):
    """The MSR address is not implemented by this simulated CPU."""


class TransientMsrError(MsrError):
    """An MSR access failed transiently (bus contention, SMM excursion).

    Unlike the permission/unknown-address errors, a transient failure is
    retryable: EARD's apply path retries a bounded number of times before
    declaring itself degraded.
    """


class FrequencyError(HardwareError):
    """A frequency request outside the supported P-state/ratio range."""


class EarError(ReproError):
    """A problem inside the EAR framework (EARL, EARD, models, policies)."""


class PolicyError(EarError):
    """An energy policy plugin misbehaved or was misconfigured."""


class ModelError(EarError):
    """The energy/performance projection model cannot produce a prediction."""


class SignatureError(EarError):
    """A signature could not be computed (e.g. empty measurement window)."""


class ConfigError(EarError):
    """Invalid EAR configuration values."""


class ExperimentError(ReproError):
    """The experiment harness was asked to do something impossible."""


class LearningError(ReproError):
    """The coefficient-learning phase failed.

    Raised when a learning campaign cannot produce a trustworthy
    coefficient table: an empty/degenerate measurement grid, or a
    validation stage whose held-out projection error exceeds the
    configured threshold.  Failing loudly here is the point — a silently
    mis-fitted table would degrade every policy decision downstream.
    """
