"""Workload profiles: the paper's kernels and applications, plus a
parametric generator for model training and ablations.

Real applications are replaced by phase-structured profiles anchored at
the paper's own measured characteristics (Tables II and V); see
DESIGN.md for the substitution rationale.
"""

from .app import Workload
from .applications import (
    afid,
    bqcd,
    bt_mz_d,
    dumses,
    gromacs_ion_channel,
    gromacs_lignocellulose,
    hpcg,
    mpi_applications,
    pop,
)
from .generator import (
    alternating_phases_workload,
    communication_workload,
    synthetic_profile,
    synthetic_workload,
    training_corpus,
)
from .kernels import (
    bt_cuda_d,
    bt_mz_c_mpi,
    bt_mz_c_openmp,
    dgemm_mkl,
    lu_cuda_d,
    lu_d_mpi,
    single_node_kernels,
    sp_mz_c_openmp,
)
from .mpi_trace import MpiCall, allreduce_pattern, event, pencil_pattern, stencil_pattern
from .phase import CACHE_LINE_BYTES, IterationCounters, PhaseProfile

__all__ = [
    "Workload",
    "PhaseProfile",
    "IterationCounters",
    "CACHE_LINE_BYTES",
    "MpiCall",
    "event",
    "stencil_pattern",
    "allreduce_pattern",
    "pencil_pattern",
    "synthetic_profile",
    "synthetic_workload",
    "training_corpus",
    "communication_workload",
    "alternating_phases_workload",
    "bt_mz_c_openmp",
    "sp_mz_c_openmp",
    "bt_cuda_d",
    "lu_cuda_d",
    "dgemm_mkl",
    "bt_mz_c_mpi",
    "lu_d_mpi",
    "single_node_kernels",
    "bqcd",
    "bt_mz_d",
    "gromacs_ion_channel",
    "gromacs_lignocellulose",
    "hpcg",
    "pop",
    "dumses",
    "afid",
    "mpi_applications",
]
