"""Parametric synthetic workload generator.

Two consumers:

* the **model learning phase** (:mod:`repro.ear.models.coefficients`)
  needs a corpus of workloads spanning the compute/memory-boundedness
  space, mirroring how EAR's real learning phase runs a kernel battery
  at every P-state on each node type;
* **ablation studies** need workloads with one knob turned at a time.

Profiles are generated on a deterministic grid (no randomness — the
corpus must be identical across runs so trained coefficients are
reproducible) covering CPU-bound through bandwidth-saturated cases,
with and without AVX-512, plus spin/offload-style profiles for GPU
nodes.
"""

from __future__ import annotations

from ..hw.node import NodeConfig
from .app import Workload
from .mpi_trace import stencil_pattern
from .phase import PhaseProfile

__all__ = ["synthetic_profile", "training_corpus", "synthetic_workload"]


def synthetic_profile(
    *,
    name: str,
    node_config: NodeConfig,
    core_share: float,
    unc_share: float,
    mem_share: float,
    vpi: float = 0.0,
    activity: float = 0.9,
    traffic_gbs: float | None = None,
    iteration_s: float = 0.5,
    spin: bool = False,
    cpi_base: float = 0.3,
) -> PhaseProfile:
    """Build one synthetic phase with a consistent anchor.

    The anchor CPI follows from the share mix (stall-heavy mixes have
    high CPI) on top of ``cpi_base`` (the execution-CPI floor, which
    real kernels vary independently of their stall share), traffic from
    the memory share unless given explicitly, and power is left
    symbolic: the profile carries its activity directly instead of
    being solved from a power target.
    """
    if not 0 <= core_share + unc_share + mem_share <= 1 + 1e-9:
        raise ValueError("shares must sum to at most 1")
    stall = unc_share + mem_share
    # CPI floor ~0.3 (below every real kernel in the evaluation so the
    # regression never extrapolates) rising to ~3.3 when stall-dominated.
    cpi = cpi_base + 3.0 * stall
    if traffic_gbs is None:
        # Strictly proportional to the stall share: TPI/CPI then encodes
        # the stall share exactly, which is what makes EAR's linear
        # (CPI, TPI) projection basis exact on this family.
        traffic_gbs = node_config.dram.peak_node_gbs * min(0.95, 1.0 * stall)
    # Memory-bound work keeps the LLC/IMC monitor busy, so the hardware
    # UFS holds the uncore up for it (otherwise training measurements
    # would conflate core DVFS with an uncore collapse no real
    # memory-bound code experiences).
    uncore_demand = min(1.0, unc_share + 1.3 * mem_share)
    n_active = 1 if spin else None
    return PhaseProfile(
        name=name,
        ref_iteration_s=iteration_s,
        ref_cpi=cpi,
        ref_gbs=max(traffic_gbs, 0.05),
        ref_dc_power_w=300.0,  # unused: activity is set explicitly below
        s_core=core_share,
        s_unc=unc_share,
        s_mem=mem_share,
        vpi=vpi,
        n_active_cores=n_active,
        hw_active_fraction=(1.0 / node_config.n_cores) if spin else None,
        uncore_demand=0.0 if spin else uncore_demand,
        activity=activity,
        calibrate_power=False,  # activity is authoritative, not the anchor
        mpi_events=stencil_pattern(2),
    )


def training_corpus(node_config: NodeConfig) -> tuple[PhaseProfile, ...]:
    """The learning-phase battery for one node type.

    A grid over boundedness mixes; GPU nodes additionally include
    offload/spin profiles so the trained model has seen signatures
    whose time barely reacts to the core clock.
    """
    profiles: list[PhaseProfile] = []
    # A one-parameter family from pure compute to bandwidth-saturated,
    # with the stall time strictly memory-proportional.  This is the
    # regime in which EAR's linear (CPI, TPI) feature basis is exact:
    # CPI(f) = cpi_exec + stall/instr * f with stall ∝ TPI, so the
    # learned B coefficient carries the whole frequency sensitivity.
    # Training kernels are chosen to satisfy it (STREAM/DGEMM-style
    # batteries do); real applications with latency- or
    # synchronisation-dominated stalls then project conservatively
    # (they look CPU-bound to the model), which is the safe direction.
    # AVX-512 profiles are deliberately absent: their licence-frequency
    # behaviour is handled at the model level (the paper's AVX512 model
    # clamps the target P-state); mixing them into the scalar regression
    # would corrupt the CPI slope for everything else.
    stall_grid = [0.0, 0.04, 0.10, 0.18, 0.28, 0.38, 0.48, 0.58, 0.68, 0.78, 0.88]
    for i, s in enumerate(stall_grid):
        activity = 1.0 - 0.55 * s
        profiles.append(
            synthetic_profile(
                name=f"train.{node_config.pstates.name}.{i}",
                node_config=node_config,
                core_share=1.0 - s,
                unc_share=0.25 * s,
                mem_share=0.75 * s,
                activity=activity,
            )
        )
    # Off-family variants: execution-CPI floor and activity varied
    # independently of the stall share.  Without them the regression
    # plane is only determined *along* the family, and signatures lying
    # off it (every real application does, a little) are projected with
    # arbitrary out-of-plane slopes — the power coefficient D in
    # particular must see power varying at fixed (CPI, TPI).
    for i, s in enumerate([0.0, 0.10, 0.28, 0.48, 0.68, 0.88]):
        profiles.append(
            synthetic_profile(
                name=f"train.{node_config.pstates.name}.base{i}",
                node_config=node_config,
                core_share=1.0 - s,
                unc_share=0.25 * s,
                mem_share=0.75 * s,
                activity=1.0 - 0.55 * s,
                cpi_base=0.8,
            )
        )
        profiles.append(
            synthetic_profile(
                name=f"train.{node_config.pstates.name}.act{i}",
                node_config=node_config,
                core_share=1.0 - s,
                unc_share=0.25 * s,
                mem_share=0.75 * s,
                activity=(1.0 - 0.55 * s) * 0.7,
            )
        )
    if node_config.gpus:
        # GPU nodes learn from offload/spin profiles: a host core spinning
        # on a device handle while the GPU computes.  Their weight in the
        # corpus dominates, as they dominate what actually runs there.
        for i, (c, a) in enumerate(
            [(0.02, 1.0), (0.03, 0.9), (0.05, 0.8), (0.08, 0.7), (0.10, 0.6), (0.15, 0.5)]
        ):
            profiles.append(
                synthetic_profile(
                    name=f"train.{node_config.pstates.name}.spin{i}",
                    node_config=node_config,
                    core_share=c,
                    unc_share=0.01,
                    mem_share=0.01,
                    activity=a,
                    traffic_gbs=0.1,
                    spin=True,
                )
            )
    return tuple(profiles)


def communication_workload(
    *,
    comm_fraction: float,
    node_config: NodeConfig,
    n_nodes: int = 4,
    n_iterations: int = 200,
    iteration_s: float = 0.5,
) -> Workload:
    """A workload whose iteration is ``comm_fraction`` MPI time.

    The substrate for the paper's future-work question about
    "high communication intensive applications": as the communication
    share grows, per-iteration time becomes frequency-invariant, cores
    spend their time spinning in the MPI runtime (which the hardware
    UFS monitor reads as a lightly loaded socket), and both the DVFS
    and the uncore stages change character.
    """
    if not 0.0 <= comm_fraction <= 0.9:
        raise ValueError(f"comm_fraction must be in [0, 0.9], got {comm_fraction}")
    compute = 1.0 - comm_fraction
    profile = synthetic_profile(
        name=f"comm{int(comm_fraction * 100)}",
        node_config=node_config,
        core_share=0.82 * compute,
        unc_share=0.08 * compute,
        mem_share=0.06 * compute,
        iteration_s=iteration_s,
        activity=0.95,
    )
    from dataclasses import replace

    profile = replace(
        profile,
        # spinning ranks look mostly idle to the UFS activity monitor
        hw_active_fraction=max(0.1, 1.0 - 0.85 * comm_fraction),
    )
    return Workload(
        name=f"COMM-{int(comm_fraction * 100)}%",
        node_config=node_config,
        n_nodes=n_nodes,
        n_processes=n_nodes * node_config.n_cores,
        phases=((profile, n_iterations),),
        description=f"synthetic bulk-synchronous code, {comm_fraction:.0%} MPI time",
    )


def alternating_phases_workload(
    *,
    node_config: NodeConfig,
    n_blocks: int = 3,
    iterations_per_block: int = 60,
    iteration_s: float = 0.5,
) -> Workload:
    """A multi-phase application: compute and memory phases alternate.

    Exercises EARL's phase machinery end to end: the 15 % signature
    change detection, the validate-fail -> defaults -> re-select path,
    and the restart of the IMC descent when the phase flips under it.
    """
    if n_blocks < 1:
        raise ValueError("need at least one block")
    compute = synthetic_profile(
        name="alt.compute",
        node_config=node_config,
        core_share=0.9,
        unc_share=0.05,
        mem_share=0.03,
        iteration_s=iteration_s,
        activity=1.0,
    )
    memory = synthetic_profile(
        name="alt.memory",
        node_config=node_config,
        core_share=0.12,
        unc_share=0.2,
        mem_share=0.6,
        iteration_s=iteration_s,
        activity=0.5,
    )
    phases: list = []
    for _ in range(n_blocks):
        phases.append((compute, iterations_per_block))
        phases.append((memory, iterations_per_block))
    return Workload(
        name=f"ALTERNATING-{n_blocks}x{iterations_per_block}",
        node_config=node_config,
        n_nodes=1,
        n_processes=node_config.n_cores,
        phases=tuple(phases),
        description="synthetic multi-phase code alternating compute/memory",
    )


def synthetic_workload(
    *,
    name: str = "synthetic",
    node_config: NodeConfig,
    core_share: float,
    unc_share: float,
    mem_share: float,
    vpi: float = 0.0,
    n_nodes: int = 1,
    n_iterations: int = 120,
    iteration_s: float = 0.5,
) -> Workload:
    """A one-phase workload for ablation and property tests."""
    profile = synthetic_profile(
        name=f"{name}.phase",
        node_config=node_config,
        core_share=core_share,
        unc_share=unc_share,
        mem_share=mem_share,
        vpi=vpi,
        iteration_s=iteration_s,
    )
    return Workload(
        name=name,
        node_config=node_config,
        n_nodes=n_nodes,
        n_processes=n_nodes,
        phases=((profile, n_iterations),),
        description="synthetic generator workload",
    )
