"""MPI call-stream synthesis for DynAIS.

EARL detects the outer iterative structure of MPI applications by
watching the sequence of MPI calls (call type + a hash of its
arguments) — the paper's "Dynais technology [...] based on repetitive
invocations of MPI calls".  The simulation therefore attaches a short,
characteristic MPI event pattern to each workload phase; the engine
replays it once per iteration and DynAIS sees exactly the kind of
periodic stream it sees in production.

Events are small integers: a call-type tag combined with a
pseudo-argument hash so two ``MPI_Send`` calls to different neighbours
are distinct events, as they are to the real Dynais.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["MpiCall", "event", "stencil_pattern", "allreduce_pattern", "pencil_pattern"]


class MpiCall(IntEnum):
    """MPI call types that matter to the loop detector."""

    SEND = 1
    RECV = 2
    ISEND = 3
    IRECV = 4
    WAITALL = 5
    ALLREDUCE = 6
    BCAST = 7
    ALLTOALL = 8
    BARRIER = 9
    REDUCE = 10


def event(call: MpiCall, arg_hash: int = 0) -> int:
    """Encode one MPI event as DynAIS sees it (call type + argument hash)."""
    if arg_hash < 0:
        raise ValueError("arg_hash must be non-negative")
    return int(call) * 1000 + (arg_hash % 1000)


def stencil_pattern(n_neighbours: int = 4, *, with_reduce: bool = True) -> tuple[int, ...]:
    """Halo-exchange iteration: Isend/Irecv per neighbour + Waitall.

    The shape of BT-MZ/SP-MZ/LU-style structured-grid solvers.
    """
    if n_neighbours <= 0:
        raise ValueError("need at least one neighbour")
    events: list[int] = []
    for n in range(n_neighbours):
        events.append(event(MpiCall.IRECV, n))
        events.append(event(MpiCall.ISEND, n))
    events.append(event(MpiCall.WAITALL))
    if with_reduce:
        events.append(event(MpiCall.ALLREDUCE))
    return tuple(events)


def allreduce_pattern(n_reductions: int = 2) -> tuple[int, ...]:
    """CG-style iteration dominated by dot products (HPCG, BQCD solvers)."""
    if n_reductions <= 0:
        raise ValueError("need at least one reduction")
    events: list[int] = []
    for n in range(n_reductions):
        events.append(event(MpiCall.ALLREDUCE, n))
        events.append(event(MpiCall.ISEND, n))
        events.append(event(MpiCall.IRECV, n))
        events.append(event(MpiCall.WAITALL, n))
    return tuple(events)


def pencil_pattern() -> tuple[int, ...]:
    """Pencil-decomposed spectral/FFT iteration (AFiD, DUMSES transposes)."""
    return (
        event(MpiCall.ALLTOALL, 0),
        event(MpiCall.ALLTOALL, 1),
        event(MpiCall.ALLREDUCE),
        event(MpiCall.BARRIER),
    )
