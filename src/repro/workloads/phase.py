"""Phase profiles: the analytic application performance model.

Each application phase is characterised the way the paper's motivation
study (section II) looks at codes: how much of its time is core-clock
bound, uncore/latency bound, memory-bandwidth bound, or insensitive to
frequency (I/O, MPI wait floor, GPU kernels).  A profile is *anchored*
at a reference measurement — the paper's own Table II / Table V rows:
iteration time, CPI, GB/s and DC node power at the nominal core clock
with the uncore at its hardware maximum.

From the anchor, iteration time at any other operating point follows

    t(f_c, f_u) = t_ref * [ s_core  · f_c_ref / f_c
                          + s_unc   · f_u_ref / f_u
                          + s_mem   · BW(f_u_ref) / BW(f_u)
                          + s_fixed ]

with the four shares summing to one.  This is the classic
compute/stall decomposition used by the model-based UFS literature the
paper cites ([20], [22]): CPU-bound codes (large ``s_core``) barely
react to the uncore; memory-bound codes (large ``s_unc + s_mem``) pay
both CPI and GB/s penalties when the uncore drops — exactly the
phenomenology of the paper's Figure 1.

Hardware counters derive from the anchor too: the instruction count per
iteration is fixed (the work does not change with frequency), cycles
are ``t · f_c``, so measured CPI and GB/s respond to frequency the way
the real counters do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import HardwareError
from ..hw.dram import DramConfig
from ..hw.node import Node, OperatingPoint
from ..hw.units import CACHE_LINE_BYTES

__all__ = ["PhaseProfile", "IterationCounters", "CACHE_LINE_BYTES"]


@dataclass(frozen=True)
class IterationCounters:
    """Ground-truth hardware-counter increments for one iteration."""

    seconds: float
    instructions: float
    cycles: float
    bytes_transferred: float
    avx512_instructions: float


@dataclass(frozen=True)
class PhaseProfile:
    """One application phase, anchored at a reference measurement.

    Parameters
    ----------
    name:
        Phase name for traces (e.g. ``"bt-mz.solver"``).
    ref_iteration_s, ref_cpi, ref_gbs, ref_dc_power_w:
        The anchor: per-iteration wall time, aggregate CPI, node memory
        traffic and DC node power measured at the nominal core clock
        and maximum uncore clock (the paper's Table II / V rows).
    s_core, s_unc, s_mem:
        Time shares at the anchor point that scale with the core clock,
        the uncore clock, and the achievable memory bandwidth; the
        remainder ``1 - s_core - s_unc - s_mem`` is frequency-invariant
        (MPI floor, I/O, GPU kernels).
    vpi:
        AVX-512 fraction of retired instructions (the paper's VPI).
    n_active_cores:
        Cores doing application work per node; ``None`` = all cores.
    hw_active_fraction:
        What the HW UFS monitor counts as busy (cores spinning in MPI
        or on a GPU handle look mostly idle to it); ``None`` derives it
        from the active-core count.
    uncore_demand:
        LLC/IMC pressure hint for the HW UFS controller, 0..1.
    gpus_busy, gpu_utilisation:
        GPU offload activity (CUDA kernels).
    mpi_events:
        Per-iteration MPI call-type sequence; this is the stream DynAIS
        watches for periodicity.  Empty for non-MPI codes (EARL then
        falls back to time-guided mode).
    """

    name: str
    ref_iteration_s: float
    ref_cpi: float
    ref_gbs: float
    ref_dc_power_w: float
    s_core: float
    s_unc: float
    s_mem: float
    vpi: float = 0.0
    n_active_cores: int | None = None
    hw_active_fraction: float | None = None
    hw_follow_factor: float | None = None
    uncore_demand: float = 0.0
    gpus_busy: int = 0
    gpu_utilisation: float = 1.0
    mpi_events: tuple[int, ...] = ()
    #: calibrated per-core dynamic activity; solved by ``calibrate_activity``.
    activity: float = field(default=1.0)
    #: whether the anchor power is a real measurement to invert; synthetic
    #: profiles set their activity directly and skip calibration.
    calibrate_power: bool = True

    def __post_init__(self) -> None:
        for attr in ("ref_iteration_s", "ref_cpi", "ref_dc_power_w"):
            if getattr(self, attr) <= 0:
                raise HardwareError(f"{self.name}: {attr} must be positive")
        if self.ref_gbs < 0:
            raise HardwareError(f"{self.name}: ref_gbs cannot be negative")
        for attr in ("s_core", "s_unc", "s_mem"):
            if getattr(self, attr) < 0:
                raise HardwareError(f"{self.name}: {attr} cannot be negative")
        if self.s_core + self.s_unc + self.s_mem > 1.0 + 1e-9:
            raise HardwareError(
                f"{self.name}: time shares sum to "
                f"{self.s_core + self.s_unc + self.s_mem:.3f} > 1"
            )
        if not 0.0 <= self.vpi <= 1.0:
            raise HardwareError(f"{self.name}: vpi must be in [0, 1]")

    # -- derived anchor quantities -------------------------------------------

    @property
    def s_fixed(self) -> float:
        """Frequency-invariant time share."""
        return max(0.0, 1.0 - self.s_core - self.s_unc - self.s_mem)

    def bytes_per_iteration(self) -> float:
        """Main-memory traffic per iteration (invariant)."""
        return self.ref_gbs * 1e9 * self.ref_iteration_s

    def instructions_per_iteration(self, *, ref_core_ghz: float, n_cores: int) -> float:
        """Instruction count per iteration (invariant).

        Derived from the anchor: aggregate unhalted cycles at the
        reference divided by the reference CPI.
        """
        active = self.n_active_cores if self.n_active_cores is not None else n_cores
        cycles = self.ref_iteration_s * ref_core_ghz * 1e9 * active
        return cycles / self.ref_cpi

    # -- the time model ---------------------------------------------------------

    def iteration_time_s(
        self,
        *,
        f_core_ghz: float,
        f_uncore_ghz: float,
        ref_core_ghz: float,
        ref_uncore_ghz: float,
        dram: DramConfig,
    ) -> float:
        """Iteration wall time at an arbitrary operating point."""
        if f_core_ghz <= 0 or f_uncore_ghz <= 0:
            raise HardwareError(f"{self.name}: frequencies must be positive")
        bw_ratio = dram.bandwidth_scale(ref_uncore_ghz) / dram.bandwidth_scale(
            f_uncore_ghz
        )
        return self.ref_iteration_s * (
            self.s_core * ref_core_ghz / f_core_ghz
            + self.s_unc * ref_uncore_ghz / f_uncore_ghz
            + self.s_mem * bw_ratio
            + self.s_fixed
        )

    # -- per-iteration execution on a node ----------------------------------------

    @staticmethod
    def ref_uncore_ghz(node: Node) -> float:
        """Uncore frequency of the anchor measurement: the silicon max.

        Single source of truth for the reference uncore clock (it used
        to be computed inline, twice, as ``hw_max_ratio * 0.1``);
        :attr:`repro.hw.uncore.UncoreDomain.hw_max_ghz` keeps the exact
        bit pattern of that product.
        """
        return node.sockets[0].uncore.hw_max_ghz

    def operating_point(self, node: Node, *, effective_core_ghz: float) -> OperatingPoint:
        """Build the node operating point for this phase."""
        n_cores = node.config.n_cores
        active = self.n_active_cores if self.n_active_cores is not None else n_cores
        return OperatingPoint(
            n_active_cores=active,
            activity=self.activity,
            vpi=self.vpi,
            traffic_gbs=0.0,  # filled per iteration once time is known
            effective_core_ghz=effective_core_ghz,
            uncore_demand=self.uncore_demand,
            hw_active_fraction=self.hw_active_fraction,
            hw_follow_factor=self.hw_follow_factor,
            gpus_busy=self.gpus_busy,
            gpu_utilisation=self.gpu_utilisation,
        )

    def execute_iteration(
        self, node: Node, *, noise: float = 1.0, clamp_ghz: float | None = None
    ) -> IterationCounters:
        """Run one iteration on a node: advance sensors, return counters.

        The hardware UFS controller is given the chance to converge
        first (its 10 ms period is far below iteration durations), then
        time and traffic follow from the current frequencies, after the
        RAPL package power limit (if armed) has throttled the cores.

        ``clamp_ghz`` caps the sustained core clock below the programmed
        target for this iteration — a thermal-throttle event (PROCHOT),
        injected by the fault layer; the programmed MSR state is
        untouched, exactly like real thermal throttling.
        """
        ref_core_ghz = self._reference_effective_ghz(node)
        eff_ghz = node.sockets[0].effective_freq_ghz(self.vpi)
        if clamp_ghz is not None:
            eff_ghz = min(eff_ghz, clamp_ghz)
        op = self.operating_point(node, effective_core_ghz=eff_ghz)
        node.run_ufs(op)
        f_unc = node.uncore_freq_ghz
        eff_ghz = self._power_capped_ghz(
            node, eff_ghz, f_unc, ref_core_ghz=ref_core_ghz
        )
        op = replace(op, effective_core_ghz=eff_ghz)
        t = self.iteration_time_s(
            f_core_ghz=eff_ghz,
            f_uncore_ghz=f_unc,
            ref_core_ghz=ref_core_ghz,
            ref_uncore_ghz=self.ref_uncore_ghz(node),
            dram=node.config.dram,
        )
        t *= noise
        nbytes = self.bytes_per_iteration()
        op = replace(op, traffic_gbs=nbytes / t / 1e9)
        node.advance(op, t)
        n_cores = node.config.n_cores
        active = self.n_active_cores if self.n_active_cores is not None else n_cores
        instr = self.instructions_per_iteration(
            ref_core_ghz=ref_core_ghz, n_cores=n_cores
        )
        return IterationCounters(
            seconds=t,
            instructions=instr,
            cycles=t * eff_ghz * 1e9 * active,
            bytes_transferred=nbytes,
            avx512_instructions=self.vpi * instr,
        )

    def _power_capped_ghz(
        self,
        node: Node,
        eff_ghz: float,
        f_unc_ghz: float,
        *,
        ref_core_ghz: float,
    ) -> float:
        """RAPL PL1 enforcement: throttle cores until the package fits.

        Mirrors the running-average power limiting of real RAPL, at
        iteration granularity: lower the sustained core clock in
        100 MHz steps until every socket's predicted package power is
        at or under the armed limit (or the floor is reached).  The
        interesting system effect: lowering the *uncore* frees package
        budget, so an explicit-UFS policy under a power cap buys the
        cores headroom — see ``benchmarks/test_powercap.py``.
        """
        cap_w = node.sockets[0].msr.read_pkg_power_limit_w()
        if cap_w is None:
            return eff_ghz
        min_ghz = node.config.pstates.min_ghz
        ghz = eff_ghz
        while ghz > min_ghz + 1e-9:
            t = self.iteration_time_s(
                f_core_ghz=ghz,
                f_uncore_ghz=f_unc_ghz,
                ref_core_ghz=ref_core_ghz,
                ref_uncore_ghz=self.ref_uncore_ghz(node),
                dram=node.config.dram,
            )
            op = replace(
                self.operating_point(node, effective_core_ghz=ghz),
                traffic_gbs=self.bytes_per_iteration() / t / 1e9,
            )
            if max(node.power(op).pck_w) <= cap_w + 1e-9:
                return ghz
            ghz = round(ghz - 0.1, 10)
        return min_ghz

    def _reference_effective_ghz(self, node: Node) -> float:
        """Effective core clock of the anchor measurement.

        The anchor was taken at the nominal target; AVX-512 work was
        licence-clamped even then (the DGEMM case), so the reference
        effective clock blends the nominal and licence clocks by VPI.
        """
        ps = node.config.pstates
        f_req = ps.nominal_ghz
        f_avx = min(f_req, ps.avx512_max_ghz)
        if self.vpi == 0.0 or f_avx == f_req:
            return f_req
        return 1.0 / ((1.0 - self.vpi) / f_req + self.vpi / f_avx)

    # -- calibration -----------------------------------------------------------

    def calibrate_activity(self, node: Node) -> "PhaseProfile":
        """Solve the free power knob so the anchor power is reproduced.

        For CPU workloads the free knob is the per-core dynamic
        *activity*; for GPU-offload workloads (whose host side is a
        single spinning core with negligible power swing) it is the GPU
        *utilisation*.  Node DC power is affine in either knob, so the
        solve is closed-form: evaluate at 0 and 1 and interpolate.  A
        target power outside the achievable range indicates a
        mis-specified profile and raises.
        """
        if not self.calibrate_power:
            return self
        eff_ghz = self._reference_effective_ghz(node)
        knob = "gpu_utilisation" if self.gpus_busy > 0 else "activity"

        def dc_at(x: float) -> float:
            op = replace(
                self.operating_point(node, effective_core_ghz=eff_ghz),
                traffic_gbs=self.ref_gbs,
                **{knob: x},
            )
            return node.power(op).dc_w

        p0, p1 = dc_at(0.0), dc_at(1.0)
        if math.isclose(p0, p1):
            raise HardwareError(
                f"{self.name}: power is insensitive to {knob}; cannot calibrate"
            )
        x = (self.ref_dc_power_w - p0) / (p1 - p0)
        hi = 1.0 if knob == "gpu_utilisation" else 2.0
        if not -0.05 <= x <= hi:
            raise HardwareError(
                f"{self.name}: calibrated {knob} {x:.2f} is outside the "
                f"plausible range; anchor power {self.ref_dc_power_w} W vs "
                f"model span [{p0:.0f}, {p1:.0f}] W at {knob} 0..1"
            )
        return replace(self, **{knob: max(x, 0.02)})
