"""The six real MPI applications of the paper's section VI-B.

Each profile is anchored at the paper's Table V (time, CPI, GB/s, DC
power at nominal frequency with hardware UFS) and its time-share
decomposition is fitted to the behaviour Table VI reports: which CPU
frequency `min_energy_to_solution` settled on and where the explicit
UFS descent stopped.

The applications split into the two classes the paper discusses:

* **CPU bound** — BQCD, GROMACS (both inputs), BT-MZ: DVFS barely
  moves, the savings come from the uncore;
* **memory bound** — HPCG, POP, DUMSES, AFiD: DVFS cuts the core clock
  substantially, the uncore guard (CPI / GB/s) keeps the descent short.
"""

from __future__ import annotations

from ..hw.node import SD530
from .app import Workload
from .mpi_trace import allreduce_pattern, pencil_pattern, stencil_pattern
from .phase import PhaseProfile

__all__ = [
    "bqcd",
    "bt_mz_d",
    "gromacs_ion_channel",
    "gromacs_lignocellulose",
    "hpcg",
    "pop",
    "dumses",
    "afid",
    "mpi_applications",
]


def bqcd() -> Workload:
    """Berlin Quantum ChromoDynamics: Hybrid Monte-Carlo lattice QCD.

    40 ranks x 4 threads over four nodes.  CPU bound with a
    latency-sensitive lattice kernel; the paper runs it with
    ``cpu_policy_th`` = 3 % because it is energy-sensitive to DVFS.
    """
    phase = PhaseProfile(
        name="bqcd.hmc",
        ref_iteration_s=0.40,
        ref_cpi=0.68,
        ref_gbs=10.98,
        ref_dc_power_w=302.15,
        s_core=0.74,
        s_unc=0.13,
        s_mem=0.07,
        mpi_events=allreduce_pattern(2),
    )
    return Workload(
        name="BQCD",
        node_config=SD530,
        n_nodes=4,
        n_processes=40,
        phases=((phase, 326),),
        description="Berlin QCD Hybrid Monte-Carlo, 40 ranks x 4 threads, 4 nodes",
    )


def bt_mz_d() -> Workload:
    """NAS BT-MZ class D: 160 ranks over four nodes.

    The most CPU-bound application (CPI 0.38, 6.6 GB/s); Figure 4 shows
    its uncore threshold sweep, Table VI its 2.39 -> 1.79 GHz descent.
    """
    phase = PhaseProfile(
        name="bt-mz.D",
        ref_iteration_s=1.00,
        ref_cpi=0.38,
        ref_gbs=6.60,
        ref_dc_power_w=320.74,
        s_core=0.90,
        s_unc=0.05,
        s_mem=0.02,
        mpi_events=stencil_pattern(4),
    )
    return Workload(
        name="BT-MZ",
        node_config=SD530,
        n_nodes=4,
        n_processes=160,
        phases=((phase, 465),),
        description="NAS multi-zone BT class D, 160 MPI ranks, 4 nodes",
    )


def gromacs_ion_channel() -> Workload:
    """GROMACS, *ion_channel* input: 160 ranks over four nodes.

    Molecular dynamics with vectorised non-bonded kernels (moderate
    VPI).  Well load-balanced at this scale, so the UFS monitor sees a
    mostly-busy socket and the hardware picks ~2.0 GHz uncore once the
    core clock is pinned (Table VI).
    """
    phase = PhaseProfile(
        name="gromacs.ion_channel",
        ref_iteration_s=0.60,
        ref_cpi=0.48,
        ref_gbs=10.39,
        ref_dc_power_w=319.35,
        s_core=0.62,
        s_unc=0.10,
        s_mem=0.05,
        vpi=0.30,
        hw_active_fraction=0.875,
        hw_follow_factor=0.90,
        mpi_events=stencil_pattern(3),
    )
    return Workload(
        name="GROMACS(I)",
        node_config=SD530,
        n_nodes=4,
        n_processes=160,
        phases=((phase, 523),),
        description="GROMACS ion_channel, 160 MPI ranks, 4 nodes",
    )


def gromacs_lignocellulose() -> Workload:
    """GROMACS, *lignocellulose-rf* input: 640 ranks over 16 nodes.

    At this scale communication dominates: cores spend much of their
    time spinning in MPI, which the UFS monitor reads as a lightly
    loaded socket — the hardware itself sinks the uncore to ~1.45 GHz
    (Table VI), and explicit UFS merely pins it there.
    """
    phase = PhaseProfile(
        name="gromacs.lignocellulose",
        ref_iteration_s=0.80,
        ref_cpi=0.63,
        ref_gbs=13.34,
        ref_dc_power_w=315.48,
        s_core=0.55,
        s_unc=0.04,
        s_mem=0.03,
        vpi=0.30,
        hw_active_fraction=0.27,
        hw_follow_factor=0.64,
        mpi_events=stencil_pattern(3),
    )
    return Workload(
        name="GROMACS(II)",
        node_config=SD530,
        n_nodes=16,
        n_processes=640,
        phases=((phase, 488),),
        description="GROMACS lignocellulose-rf, 640 MPI ranks, 16 nodes",
    )


def hpcg() -> Workload:
    """High Performance Conjugate Gradients: the most memory-bound case.

    CPI 3.13 at 177 GB/s: DVFS dives to ~1.7 GHz core (the 5 % penalty
    limit), while the uncore guard trips after a single 0.1 GHz step
    (Table VI: 2.39 -> 2.29 GHz).
    """
    phase = PhaseProfile(
        name="hpcg.cg",
        ref_iteration_s=0.50,
        ref_cpi=3.13,
        ref_gbs=177.45,
        ref_dc_power_w=339.88,
        s_core=0.12,
        s_unc=0.20,
        s_mem=0.55,
        uncore_demand=1.0,
        mpi_events=allreduce_pattern(3),
    )
    return Workload(
        name="HPCG",
        node_config=SD530,
        n_nodes=4,
        n_processes=160,
        phases=((phase, 339),),
        description="HPCG benchmark, 160 MPI ranks, 4 nodes",
    )


def pop() -> Workload:
    """Parallel Ocean Program v2 (LANL): 384 ranks over ten nodes."""
    phase = PhaseProfile(
        name="pop.baroclinic",
        ref_iteration_s=1.50,
        ref_cpi=0.72,
        ref_gbs=100.66,
        ref_dc_power_w=347.18,
        s_core=0.45,
        s_unc=0.12,
        s_mem=0.30,
        uncore_demand=0.98,
        mpi_events=allreduce_pattern(2),
    )
    return Workload(
        name="POP",
        node_config=SD530,
        n_nodes=10,
        n_processes=384,
        phases=((phase, 1022),),
        description="Parallel Ocean Program 2, 384 MPI ranks, 10 nodes",
    )


def dumses() -> Workload:
    """DUMSES: 3D Godunov (magneto)hydrodynamics, 512 ranks, 13 nodes."""
    phase = PhaseProfile(
        name="dumses.godunov",
        ref_iteration_s=1.20,
        ref_cpi=1.08,
        ref_gbs=119.07,
        ref_dc_power_w=333.69,
        s_core=0.35,
        s_unc=0.13,
        s_mem=0.28,
        uncore_demand=1.0,
        mpi_events=pencil_pattern(),
    )
    return Workload(
        name="DUMSES",
        node_config=SD530,
        n_nodes=13,
        n_processes=512,
        phases=((phase, 678),),
        description="DUMSES-hybrid MHD code, 512 MPI ranks, 13 nodes",
    )


def afid() -> Workload:
    """AFiD: pencil-distributed Rayleigh-Benard solver, 576 ranks, 15 nodes."""
    phase = PhaseProfile(
        name="afid.pencil",
        ref_iteration_s=0.80,
        ref_cpi=0.77,
        ref_gbs=115.20,
        ref_dc_power_w=333.65,
        s_core=0.45,
        s_unc=0.11,
        s_mem=0.30,
        uncore_demand=0.98,
        mpi_events=pencil_pattern(),
    )
    return Workload(
        name="AFiD",
        node_config=SD530,
        n_nodes=15,
        n_processes=576,
        phases=((phase, 335),),
        description="AFiD Rayleigh-Benard flow solver, 576 MPI ranks, 15 nodes",
    )


def mpi_applications() -> tuple[Workload, ...]:
    """The eight application configurations of Tables V/VI, paper order."""
    return (
        bqcd(),
        bt_mz_d(),
        gromacs_ion_channel(),
        gromacs_lignocellulose(),
        hpcg(),
        pop(),
        dumses(),
        afid(),
    )
