"""Single-node kernels of the paper's Tables I-IV and Figure 1.

Each profile is anchored at the paper's own measurements (Table II for
the single-node kernels; Table I for the multi-node motivation kernels)
and its time-share decomposition is fitted to the behaviour the paper
reports: where the `min_energy_to_solution` CPU search stopped and where
the explicit-UFS descent settled (Table IV).

Anchor columns: time (s), CPI, GB/s (node), avg DC power (W), all at the
nominal core clock with hardware UFS.
"""

from __future__ import annotations

from dataclasses import replace

from ..hw.node import GPU_NODE, SD530
from .app import Workload
from .mpi_trace import stencil_pattern
from .phase import PhaseProfile

__all__ = [
    "bt_mz_c_openmp",
    "sp_mz_c_openmp",
    "bt_cuda_d",
    "lu_cuda_d",
    "dgemm_mkl",
    "stream_triad",
    "bt_mz_c_mpi",
    "lu_d_mpi",
    "single_node_kernels",
]


def bt_mz_c_openmp() -> Workload:
    """NAS BT-MZ class C, OpenMP, one node, 40 threads.

    CPU-bound (CPI 0.39, 28 GB/s): the DVFS stage keeps the nominal
    clock; explicit UFS walks the uncore down to ~1.9 GHz for ~7-8 %
    power saving at ~1 % time penalty (Table III/IV).
    """
    phase = PhaseProfile(
        name="bt-mz.C.omp",
        ref_iteration_s=0.45,
        ref_cpi=0.39,
        ref_gbs=28.0,
        ref_dc_power_w=332.0,
        s_core=0.90,
        s_unc=0.05,
        s_mem=0.04,
        vpi=0.0,
    )
    return Workload(
        name="BT-MZ.C",
        node_config=SD530,
        n_nodes=1,
        n_processes=1,
        phases=((phase, 322),),
        description="NAS multi-zone Block Tri-diagonal solver, class C, OpenMP",
    )


def sp_mz_c_openmp() -> Workload:
    """NAS SP-MZ class C, OpenMP, one node, 40 threads.

    More memory traffic than BT-MZ (78 GB/s) but still CPU-bound enough
    that DVFS stays at nominal; eUFS reaches ~1.9-2.1 GHz uncore.
    """
    phase = PhaseProfile(
        name="sp-mz.C.omp",
        ref_iteration_s=0.60,
        ref_cpi=0.53,
        ref_gbs=78.0,
        ref_dc_power_w=358.0,
        s_core=0.78,
        s_unc=0.05,
        s_mem=0.06,
        vpi=0.0,
    )
    return Workload(
        name="SP-MZ.C",
        node_config=SD530,
        n_nodes=1,
        n_processes=1,
        phases=((phase, 440),),
        description="NAS multi-zone Scalar Penta-diagonal solver, class C, OpenMP",
    )


def bt_cuda_d() -> Workload:
    """NAS BT class D, CUDA port; one GPU busy, one host core spinning.

    The host side is a pause-loop busy wait: almost no memory activity,
    so the UFS monitor sees a barely-loaded socket and the explicit UFS
    can push the uncore to the floor without any performance cost.
    """
    phase = PhaseProfile(
        name="bt.D.cuda",
        ref_iteration_s=1.50,
        ref_cpi=0.49,
        ref_gbs=0.09,
        ref_dc_power_w=305.0,
        s_core=0.020,
        s_unc=0.005,
        s_mem=0.005,
        n_active_cores=1,
        hw_active_fraction=1.0 / 32.0,
        uncore_demand=0.0,
        gpus_busy=1,
    )
    return Workload(
        name="BT.CUDA.D",
        node_config=GPU_NODE,
        n_nodes=1,
        n_processes=1,
        phases=((phase, 310),),
        description="NAS BT class D on one Tesla V100 (npb-gpu port)",
    )


def lu_cuda_d() -> Workload:
    """NAS LU class D, CUDA port; host busy-wait polls mapped memory.

    The polling keeps the LLC/IMC monitor busy, so the *hardware* UFS
    holds the uncore at the maximum (Table IV: 2.39 GHz under ME) while
    the explicit UFS, guided by the CPI guard, still walks it down to
    ~1.6 GHz.
    """
    phase = PhaseProfile(
        name="lu.D.cuda",
        ref_iteration_s=0.80,
        ref_cpi=0.54,
        ref_gbs=0.19,
        ref_dc_power_w=290.0,
        s_core=0.010,
        s_unc=0.040,
        s_mem=0.005,
        n_active_cores=1,
        hw_active_fraction=1.0 / 32.0,
        uncore_demand=1.0,
        gpus_busy=1,
    )
    cfg = replace(GPU_NODE, idle_core_freq_ghz=2.0)
    return Workload(
        name="LU.CUDA.D",
        node_config=cfg,
        n_nodes=1,
        n_processes=1,
        phases=((phase, 320),),
        description="NAS LU class D on one Tesla V100 (npb-gpu port)",
    )


def dgemm_mkl() -> Workload:
    """Intel MKL DGEMM, 40 threads, VPI = 100 %.

    All-AVX512: the silicon clamps the core clock to the licence
    frequency and the hardware already rebalances power away from the
    uncore, so explicit UFS only trims ~0.1 GHz more (Table IV:
    1.98 -> 1.87 GHz).
    """
    phase = PhaseProfile(
        name="dgemm.mkl",
        ref_iteration_s=0.50,
        ref_cpi=0.45,
        ref_gbs=98.0,
        ref_dc_power_w=369.0,
        s_core=0.82,
        s_unc=0.12,
        s_mem=0.05,
        vpi=1.0,
    )
    return Workload(
        name="DGEMM",
        node_config=SD530,
        n_nodes=1,
        n_processes=1,
        phases=((phase, 320),),
        description="Intel MKL double-precision matrix multiply (AVX-512)",
    )


def stream_triad() -> Workload:
    """STREAM triad, 40 threads: the memory-bound learning anchor.

    Not part of the paper's evaluation tables — this is the bandwidth
    kernel EAR's own learning battery ships alongside DGEMM, included
    so the coefficient fit sees the memory-bound end of the CPI range
    (without it, projections for codes like HPCG extrapolate far
    outside the training data and the validation stage rejects the
    table).
    """
    phase = PhaseProfile(
        name="stream.triad",
        ref_iteration_s=0.40,
        ref_cpi=2.90,
        ref_gbs=180.0,
        ref_dc_power_w=345.0,
        s_core=0.10,
        s_unc=0.18,
        s_mem=0.60,
        uncore_demand=1.0,
    )
    return Workload(
        name="STREAM",
        node_config=SD530,
        n_nodes=1,
        n_processes=1,
        phases=((phase, 400),),
        description="STREAM triad bandwidth kernel (a(i) = b(i) + q*c(i))",
    )


def bt_mz_c_mpi() -> Workload:
    """NAS BT-MZ class C, MPI: 160 ranks over four nodes (Table I).

    The motivation-study configuration: CPU-intensive signature where
    the policy keeps the nominal clock and the hardware keeps the
    uncore at the maximum.
    """
    phase = PhaseProfile(
        name="bt-mz.C.mpi",
        ref_iteration_s=0.45,
        ref_cpi=0.38,
        ref_gbs=10.19,
        ref_dc_power_w=320.0,
        s_core=0.92,
        s_unc=0.04,
        s_mem=0.02,
        mpi_events=stencil_pattern(4),
    )
    return Workload(
        name="BT-MZ.C.mpi",
        node_config=SD530,
        n_nodes=4,
        n_processes=160,
        phases=((phase, 322),),
        description="NAS BT-MZ class C, 160 MPI ranks on four nodes",
    )


def lu_d_mpi() -> Workload:
    """NAS LU class D: 2 ranks on two nodes, 40 OpenMP threads each.

    Memory-intensive (CPI 1.04, 76 GB/s): the second motivation kernel,
    where lowering the uncore hits both CPI and bandwidth (Fig. 1b).
    """
    phase = PhaseProfile(
        name="lu.D.mpi",
        ref_iteration_s=0.50,
        ref_cpi=1.04,
        ref_gbs=75.93,
        ref_dc_power_w=350.0,
        s_core=0.50,
        s_unc=0.12,
        s_mem=0.18,
        mpi_events=stencil_pattern(2),
    )
    return Workload(
        name="LU.D.mpi",
        node_config=SD530,
        n_nodes=2,
        n_processes=2,
        phases=((phase, 512),),
        description="NAS LU class D, hybrid MPI+OpenMP on two nodes",
    )


def single_node_kernels() -> tuple[Workload, ...]:
    """The five kernels of Tables II-IV, in paper order."""
    return (
        bt_mz_c_openmp(),
        sp_mz_c_openmp(),
        bt_cuda_d(),
        lu_cuda_d(),
        dgemm_mkl(),
    )
