"""Workload definitions: phases + cluster layout.

A :class:`Workload` bundles everything the experiment harness needs to
launch a job: the node type, how many nodes / processes the paper used,
and the phase sequence with iteration counts.  Profiles are calibrated
lazily (power-model inversion needs a node instance) and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ExperimentError
from ..hw.node import Node, NodeConfig
from .phase import PhaseProfile

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """A runnable job description.

    Attributes
    ----------
    name:
        Identifier used in reports (matches the paper's tables).
    node_config:
        Node type the job runs on.
    n_nodes:
        Nodes allocated (per the paper's evaluation section).
    n_processes:
        MPI ranks; purely descriptive for reports (the per-node share
        of work is already folded into the phase anchors).
    phases:
        ``(profile, n_iterations)`` pairs executed in order on every
        node.  Iteration counts are per phase.
    description:
        One line about what the real application is.
    """

    name: str
    node_config: NodeConfig
    n_nodes: int
    n_processes: int
    phases: tuple[tuple[PhaseProfile, int], ...]
    description: str = ""
    _calibrated: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ExperimentError(f"{self.name}: need at least one node")
        if not self.phases:
            raise ExperimentError(f"{self.name}: a workload needs phases")
        for profile, iters in self.phases:
            if iters <= 0:
                raise ExperimentError(
                    f"{self.name}: phase {profile.name} has {iters} iterations"
                )

    @property
    def total_ref_time_s(self) -> float:
        """Wall time at the anchor operating point (no policy, no noise)."""
        return sum(p.ref_iteration_s * n for p, n in self.phases)

    @property
    def main_phase(self) -> PhaseProfile:
        """The phase contributing the most reference time."""
        return max(self.phases, key=lambda pn: pn[0].ref_iteration_s * pn[1])[0]

    def calibrated(self) -> "Workload":
        """Return a copy with every phase's power knob calibrated.

        Calibration instantiates a scratch node of the right type and
        inverts the affine power model; see
        :meth:`repro.workloads.phase.PhaseProfile.calibrate_activity`.
        """
        if self._calibrated:
            return self
        scratch = Node(self.node_config)
        phases = tuple(
            (profile.calibrate_activity(scratch), n) for profile, n in self.phases
        )
        return replace(self, phases=phases, _calibrated=True)

    def retargeted(self, node_config: NodeConfig) -> "Workload":
        """Copy bound to a different node type (same name and phases).

        A heterogeneous scheduler uses this when it places a job on a
        generation other than the trace's default.  Calibration is
        dropped so the power knobs are re-fitted for the new silicon;
        the name is kept, so run-cache keys differ only through the
        node configuration.
        """
        if node_config == self.node_config:
            return self
        return replace(self, node_config=node_config, _calibrated=False)

    def scaled_iterations(self, factor: float) -> "Workload":
        """Copy with iteration counts scaled (shorter test runs)."""
        if factor <= 0:
            raise ExperimentError("scale factor must be positive")
        phases = tuple(
            (profile, max(1, int(round(n * factor)))) for profile, n in self.phases
        )
        return replace(self, phases=phases)
