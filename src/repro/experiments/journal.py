"""Crash-safe campaign journals: an append-only JSONL write-ahead log.

A learning campaign or a cluster policy-compare is hours of work whose
value accrues one run at a time; a Ctrl-C, a dead machine or a worker
segfault must not reduce it to "whatever happened to land in the run
cache".  A :class:`CampaignJournal` records every *submitted*,
*completed* and *failed* request of a campaign as one JSON line,
flushed and ``fsync``'d per record, under
``results/.journal/<campaign-id>.jsonl``.  On resume the journal is
replayed (tolerating a torn final line — the record being written when
the power went out), completed work is served from the run cache, and
the campaign continues from the interruption point.

Division of labour with the run cache:

* the **cache** holds the physics (content-addressed
  :class:`~repro.sim.result.RunResult` blobs) — it is what makes
  resume cheap;
* the **journal** holds the *campaign state*: which requests exist,
  which completed, which were quarantined as poison jobs — it is what
  makes resume *known* (coverage is reported, poison jobs are not
  naively re-run) and campaigns auditable after the fact.

A journaled key whose cached result has been evicted is simply re-run:
the journal is advisory for physics, authoritative for history.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_JOURNAL_DIR",
    "CampaignJournal",
    "JournalState",
    "campaign_id",
]

#: Conventional journal location, next to the run cache.
DEFAULT_JOURNAL_DIR = Path("results") / ".journal"


def campaign_id(*parts) -> str:
    """Stable 16-hex-digit identity of a campaign.

    Hash of the canonical JSON of the parts (typically the sorted run
    request keys plus campaign parameters), so the same campaign
    resumes into the same journal and a changed campaign gets a fresh
    one.
    """
    blob = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class JournalState:
    """Replayed view of one journal file."""

    #: the ``campaign`` header payload, if one was written.
    header: dict = field(default_factory=dict)
    #: keys submitted at least once.
    submitted: set[str] = field(default_factory=set)
    #: keys that completed (possibly served from cache).
    completed: set[str] = field(default_factory=set)
    #: quarantined keys -> final error string.
    failed: dict[str, str] = field(default_factory=dict)
    #: True when a ``campaign_complete`` trailer was replayed.
    finished: bool = False
    #: records dropped during replay (torn tail, foreign garbage).
    corrupt_lines: int = 0

    @property
    def total(self) -> int:
        """Distinct requests the journal knows about."""
        return len(self.submitted | self.completed | set(self.failed))

    def coverage(self) -> float:
        """Fraction of known requests that completed."""
        total = self.total
        return len(self.completed) / total if total else 0.0

    def describe(self) -> str:
        """One-line resume summary for CLI output."""
        return (
            f"{len(self.completed)}/{self.total} completed, "
            f"{len(self.failed)} quarantined"
            + (", campaign finished" if self.finished else "")
        )


class CampaignJournal:
    """Append-only, fsync-per-record JSONL write-ahead journal.

    Records are flat JSON objects with a ``record`` discriminator:
    ``campaign`` (header), ``submitted``, ``completed``, ``failed``,
    ``campaign_complete`` (trailer).  Appends are atomic at the line
    level on POSIX (single ``write`` of less than ``PIPE_BUF``); a
    crash mid-append leaves at most one torn final line, which
    :meth:`replay` drops.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True) -> None:
        self.path = Path(path)
        #: fsync per record (the crash-safety contract); tests may turn
        #: it off to keep thousands of appends fast.
        self.fsync = fsync
        self._fh = None
        # appends can come from several pump threads when the service
        # tier shares one journal; the lock keeps lines un-torn.
        self._lock = threading.Lock()
        self._completed: set[str] = set()
        self._failed: set[str] = set()
        self._submitted: set[str] = set()

    # -- construction ---------------------------------------------------------

    @classmethod
    def for_campaign(
        cls,
        campaign: str,
        *,
        directory: str | os.PathLike | None = None,
        resume: bool = False,
        meta: Mapping | None = None,
    ) -> "CampaignJournal":
        """Open the journal for a campaign id.

        Without ``resume`` an existing journal for the same campaign is
        truncated (a fresh campaign supersedes the old history); with
        ``resume`` the existing file is kept and extended.  A header
        record is written for fresh journals.
        """
        directory = Path(directory) if directory is not None else DEFAULT_JOURNAL_DIR
        journal = cls(directory / f"{campaign}.jsonl")
        if not resume and journal.path.exists():
            journal.path.unlink()
        if resume:
            state = journal.replay()
            journal._completed = set(state.completed)
            journal._failed = set(state.failed)
            journal._submitted = set(state.submitted)
        if not journal.path.exists() or journal.path.stat().st_size == 0:
            journal.record("campaign", campaign=campaign, **dict(meta or {}))
        return journal

    # -- writing --------------------------------------------------------------

    def record(self, record: str, **payload) -> None:
        """Append one record and force it to stable storage."""
        line = json.dumps({"record": record, **payload}, sort_keys=True)
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def submitted(self, key: str, **meta) -> None:
        """Journal a request entering execution (idempotent per key)."""
        if key in self._submitted:
            return
        self._submitted.add(key)
        self.record("submitted", key=key, **meta)

    def completed(self, key: str, *, cached: bool = False) -> None:
        """Journal a request finishing (``cached`` = served, not run)."""
        if key in self._completed:
            return
        self._completed.add(key)
        self.record("completed", key=key, cached=cached)

    def failed(self, key: str, *, error: str, attempts: int) -> None:
        """Journal a quarantined request with its final error."""
        if key in self._failed:
            return
        self._failed.add(key)
        self.record("failed", key=key, error=error, attempts=attempts)

    def finish(self, **meta) -> None:
        """Journal the campaign trailer (everything accounted for)."""
        self.record("campaign_complete", **meta)

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay ---------------------------------------------------------------

    def replay(self) -> JournalState:
        """Rebuild campaign state from the file, torn-tail tolerant.

        A truncated final line (crash mid-append) is silently dropped;
        corrupt lines elsewhere are counted but skipped, never fatal —
        a journal that survived a crash is exactly the artefact resume
        needs, so replay must not be the thing that refuses it.
        """
        state = JournalState()
        if not self.path.exists():
            return state
        with self.path.open("r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                state.corrupt_lines += 1
                continue
            if not isinstance(rec, dict):
                state.corrupt_lines += 1
                continue
            kind = rec.get("record")
            key = rec.get("key")
            if kind == "campaign":
                state.header = {
                    k: v for k, v in rec.items() if k != "record"
                }
            elif kind == "submitted" and isinstance(key, str):
                state.submitted.add(key)
            elif kind == "completed" and isinstance(key, str):
                state.completed.add(key)
            elif kind == "failed" and isinstance(key, str):
                state.failed[key] = str(rec.get("error", ""))
            elif kind == "campaign_complete":
                state.finished = True
        return state


def journal_requests(journal: "CampaignJournal | None", keyed: Iterable[tuple[str, object]]) -> None:
    """Journal a batch's requests as submitted (no-op without journal)."""
    if journal is None:
        return
    for key, req in keyed:
        workload = getattr(getattr(req, "workload", None), "name", "")
        journal.submitted(key, workload=workload, seed=getattr(req, "seed", None))
