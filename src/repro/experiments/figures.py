"""Builders for the paper's evaluation figures (3-8).

Each figure is a set of bar groups: configurations on the x-axis and
(time penalty, DC power saving, energy saving) bars — the paper's
recurring plot shape.  Builders return the series as row dicts so the
benches print them and tests assert their ordering.
"""

from __future__ import annotations

from ..ear.config import EarConfig
from ..workloads.applications import (
    afid,
    bqcd,
    bt_mz_d,
    dumses,
    gromacs_ion_channel,
    gromacs_lignocellulose,
    hpcg,
    pop,
)
from .parallel import RunRequest
from .runner import DEFAULT_SEEDS, _pool_for, compare

__all__ = [
    "figure3_bqcd",
    "figure4_btmz",
    "figure5_gromacs1",
    "figure6_gromacs2",
    "figure7_hpcg_pop",
    "figure8_dumses_afid",
]


def _prefetch(pairs, *, seeds, scale, jobs) -> None:
    """Warm the run cache for several (workload, config) pairs at once.

    Figures that compare multiple workloads or threshold settings
    submit every run in one batch, so a ``jobs > 1`` pool fans the
    whole figure out together.  Serial pools skip the extra pass.
    """
    pool = _pool_for(jobs)
    if pool.jobs <= 1:
        return
    pool.run_many(
        [
            RunRequest(workload=wl, ear_config=cfg, seed=s, scale=scale)
            for wl, cfg in pairs
            for s in seeds
        ]
    )


def _series(workload, configs, *, seeds, scale, jobs=None) -> list[dict]:
    cmp_ = compare(workload, configs, seeds=seeds, scale=scale, jobs=jobs)
    return [
        {
            "config": name,
            "time_penalty": c.time_penalty,
            "power_saving": c.power_saving,
            "energy_saving": c.energy_saving,
            "efficiency_ratio": c.efficiency_ratio,
            "avg_cpu_ghz": c.result.avg_cpu_freq_ghz,
            "avg_imc_ghz": c.result.avg_imc_freq_ghz,
        }
        for name, c in cmp_.items()
    ]


def figure3_bqcd(*, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None) -> list[dict]:
    """Figure 3: BQCD — ME vs ME+eU at unc_policy_th 1 %, 2 %, 3 %.

    cpu_policy_th = 3 % throughout; the uncore threshold controls the
    descent depth, and power saving scales better than time penalty.
    """
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.03),
        "me_eufs_1": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.01),
        "me_eufs_2": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.02),
        "me_eufs_3": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.03),
    }
    return _series(bqcd(), configs, seeds=seeds, scale=scale, jobs=jobs)


def figure4_btmz(*, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None) -> list[dict]:
    """Figure 4: BT-MZ — unc_policy_th 0 %, 1 %, 2 % at cpu_policy_th 3 %.

    The 0 % case shows the uncore can be lowered with no per-iteration
    slowdown at all while still saving power.
    """
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.03),
        "me_eufs_0": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.0),
        "me_eufs_1": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.01),
        "me_eufs_2": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.02),
    }
    return _series(bt_mz_d(), configs, seeds=seeds, scale=scale, jobs=jobs)


def figure5_gromacs1(*, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None) -> dict[str, list[dict]]:
    """Figure 5: GROMACS(I) — HW-guided vs not-guided uncore search.

    At cpu_policy_th 3 % and 5 %: ME, ME+NG-U (search starts at the
    silicon maximum) and ME+eU (search starts at the HW selection, the
    default).  Both explicit variants beat plain ME; the HW-guided one
    converges in far fewer signature windows.
    """
    seeds = tuple(seeds)
    wl = gromacs_ion_channel()
    per_th = {
        th: {
            "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=th),
            "me_ngu": EarConfig(cpu_policy_th=th, unc_policy_th=0.02, hw_guided_imc=False),
            "me_eufs": EarConfig(cpu_policy_th=th, unc_policy_th=0.02),
        }
        for th in (0.03, 0.05)
    }
    _prefetch(
        [(wl, cfg) for configs in per_th.values() for cfg in configs.values()]
        + [(wl, None)],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    out = {}
    for th, configs in per_th.items():
        out[f"cpu_th_{int(th * 100)}"] = _series(
            wl, configs, seeds=seeds, scale=scale, jobs=jobs
        )
    return out


def figure6_gromacs2(*, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None) -> list[dict]:
    """Figure 6: GROMACS(II) — ME vs ME+eU at 5 %/2 %.

    The hardware already sinks the uncore for this comm-bound run; the
    explicit policy pins it there, stopping upward excursions.
    """
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.05),
        "me_eufs": EarConfig(cpu_policy_th=0.05, unc_policy_th=0.02),
    }
    return _series(gromacs_lignocellulose(), configs, seeds=seeds, scale=scale, jobs=jobs)


def figure7_hpcg_pop(*, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None) -> dict[str, list[dict]]:
    """Figure 7: HPCG (a) and POP (b) — ME vs ME+eU at 5 %/2 %."""
    seeds = tuple(seeds)
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.05),
        "me_eufs": EarConfig(cpu_policy_th=0.05, unc_policy_th=0.02),
    }
    workloads = {"HPCG": hpcg(), "POP": pop()}
    _prefetch(
        [
            (wl, cfg)
            for wl in workloads.values()
            for cfg in (None, *configs.values())
        ],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    return {
        key: _series(wl, configs, seeds=seeds, scale=scale, jobs=jobs)
        for key, wl in workloads.items()
    }


def figure8_dumses_afid(*, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None) -> dict[str, list[dict]]:
    """Figure 8: DUMSES (a) and AFiD (b) — cpu_policy_th 3 % and 5 %.

    Shows the two thresholds as the user's efficiency-vs-savings dial.
    """
    seeds = tuple(seeds)
    workloads = {"DUMSES": dumses(), "AFiD": afid()}

    def configs_for(th: float) -> dict[str, EarConfig]:
        return {
            f"me_{int(th * 100)}": EarConfig(use_explicit_ufs=False, cpu_policy_th=th),
            f"me_eufs_{int(th * 100)}": EarConfig(cpu_policy_th=th, unc_policy_th=0.02),
        }

    _prefetch(
        [
            (wl, cfg)
            for wl in workloads.values()
            for th in (0.03, 0.05)
            for cfg in (None, *configs_for(th).values())
        ],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    out = {}
    for key, wl in workloads.items():
        series = []
        for th in (0.03, 0.05):
            series.extend(
                _series(wl, configs_for(th), seeds=seeds, scale=scale, jobs=jobs)
            )
        out[key] = series
    return out
