"""Builders for the paper's evaluation figures (3-8).

Each figure is a set of bar groups: configurations on the x-axis and
(time penalty, DC power saving, energy saving) bars — the paper's
recurring plot shape.  Builders return the series as row dicts so the
benches print them and tests assert their ordering.
"""

from __future__ import annotations

from ..ear.config import EarConfig
from ..workloads.applications import (
    afid,
    bqcd,
    bt_mz_d,
    dumses,
    gromacs_ion_channel,
    gromacs_lignocellulose,
    hpcg,
    pop,
)
from .runner import DEFAULT_SEEDS, compare

__all__ = [
    "figure3_bqcd",
    "figure4_btmz",
    "figure5_gromacs1",
    "figure6_gromacs2",
    "figure7_hpcg_pop",
    "figure8_dumses_afid",
]


def _series(workload, configs, *, seeds, scale) -> list[dict]:
    cmp_ = compare(workload, configs, seeds=seeds, scale=scale)
    return [
        {
            "config": name,
            "time_penalty": c.time_penalty,
            "power_saving": c.power_saving,
            "energy_saving": c.energy_saving,
            "efficiency_ratio": c.efficiency_ratio,
            "avg_cpu_ghz": c.result.avg_cpu_freq_ghz,
            "avg_imc_ghz": c.result.avg_imc_freq_ghz,
        }
        for name, c in cmp_.items()
    ]


def figure3_bqcd(*, seeds=DEFAULT_SEEDS, scale: float = 1.0) -> list[dict]:
    """Figure 3: BQCD — ME vs ME+eU at unc_policy_th 1 %, 2 %, 3 %.

    cpu_policy_th = 3 % throughout; the uncore threshold controls the
    descent depth, and power saving scales better than time penalty.
    """
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.03),
        "me_eufs_1": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.01),
        "me_eufs_2": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.02),
        "me_eufs_3": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.03),
    }
    return _series(bqcd(), configs, seeds=seeds, scale=scale)


def figure4_btmz(*, seeds=DEFAULT_SEEDS, scale: float = 1.0) -> list[dict]:
    """Figure 4: BT-MZ — unc_policy_th 0 %, 1 %, 2 % at cpu_policy_th 3 %.

    The 0 % case shows the uncore can be lowered with no per-iteration
    slowdown at all while still saving power.
    """
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.03),
        "me_eufs_0": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.0),
        "me_eufs_1": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.01),
        "me_eufs_2": EarConfig(cpu_policy_th=0.03, unc_policy_th=0.02),
    }
    return _series(bt_mz_d(), configs, seeds=seeds, scale=scale)


def figure5_gromacs1(*, seeds=DEFAULT_SEEDS, scale: float = 1.0) -> dict[str, list[dict]]:
    """Figure 5: GROMACS(I) — HW-guided vs not-guided uncore search.

    At cpu_policy_th 3 % and 5 %: ME, ME+NG-U (search starts at the
    silicon maximum) and ME+eU (search starts at the HW selection, the
    default).  Both explicit variants beat plain ME; the HW-guided one
    converges in far fewer signature windows.
    """
    out = {}
    for th in (0.03, 0.05):
        configs = {
            "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=th),
            "me_ngu": EarConfig(cpu_policy_th=th, unc_policy_th=0.02, hw_guided_imc=False),
            "me_eufs": EarConfig(cpu_policy_th=th, unc_policy_th=0.02),
        }
        out[f"cpu_th_{int(th * 100)}"] = _series(
            gromacs_ion_channel(), configs, seeds=seeds, scale=scale
        )
    return out


def figure6_gromacs2(*, seeds=DEFAULT_SEEDS, scale: float = 1.0) -> list[dict]:
    """Figure 6: GROMACS(II) — ME vs ME+eU at 5 %/2 %.

    The hardware already sinks the uncore for this comm-bound run; the
    explicit policy pins it there, stopping upward excursions.
    """
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.05),
        "me_eufs": EarConfig(cpu_policy_th=0.05, unc_policy_th=0.02),
    }
    return _series(gromacs_lignocellulose(), configs, seeds=seeds, scale=scale)


def figure7_hpcg_pop(*, seeds=DEFAULT_SEEDS, scale: float = 1.0) -> dict[str, list[dict]]:
    """Figure 7: HPCG (a) and POP (b) — ME vs ME+eU at 5 %/2 %."""
    configs = {
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=0.05),
        "me_eufs": EarConfig(cpu_policy_th=0.05, unc_policy_th=0.02),
    }
    return {
        "HPCG": _series(hpcg(), configs, seeds=seeds, scale=scale),
        "POP": _series(pop(), configs, seeds=seeds, scale=scale),
    }


def figure8_dumses_afid(*, seeds=DEFAULT_SEEDS, scale: float = 1.0) -> dict[str, list[dict]]:
    """Figure 8: DUMSES (a) and AFiD (b) — cpu_policy_th 3 % and 5 %.

    Shows the two thresholds as the user's efficiency-vs-savings dial.
    """
    out = {}
    for wl_fn, key in ((dumses, "DUMSES"), (afid, "AFiD")):
        series = []
        for th in (0.03, 0.05):
            configs = {
                f"me_{int(th * 100)}": EarConfig(use_explicit_ufs=False, cpu_policy_th=th),
                f"me_eufs_{int(th * 100)}": EarConfig(cpu_policy_th=th, unc_policy_th=0.02),
            }
            series.extend(_series(wl_fn(), configs, seeds=seeds, scale=scale))
        out[key] = series
    return out
