"""Parallel experiment execution with a persistent run cache.

The paper's methodology multiplies work: every table and figure
averages three seeded runs per configuration per workload, and a full
regeneration touches hundreds of (workload, config, seed, scale)
combinations — an embarrassingly parallel sweep.  This module provides
the execution layer behind :func:`repro.experiments.runner.run_averaged`
and :func:`repro.experiments.runner.compare`:

:class:`RunRequest`
    One simulation job, content-addressed.  The cache key is a SHA-256
    hash of the workload spec, the EAR configuration fields, the seed,
    the scale, the pin/noise parameters and a cache-format version —
    display names (``config_name``) are deliberately *not* part of the
    key or the cached value, so the same physical run requested under
    two different names shares one cache entry and is stamped with the
    requester's name on retrieval.

:class:`RunCache`
    Two-layer result cache: an in-process dict in front of an optional
    on-disk store (``results/.cache/`` by convention).  Disk entries
    are versioned; a format bump invalidates them wholesale.

:class:`ExperimentPool`
    Fans a batch of requests out over ``concurrent.futures``
    ``ProcessPoolExecutor`` workers and merges the results
    deterministically: outputs are ordered by submission key,
    independent of completion order, so averaged numbers are
    bit-identical to a serial run of the same seeds.

All simulation stochasticity flows from the per-run seed, so executing
a request in a worker process yields exactly the bytes a serial
execution would.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..ear.config import EarConfig
from ..sim.engine import DEFAULT_NOISE_SIGMA, run_workload
from ..sim.faults import FaultPlan
from ..sim.result import RunResult
from ..workloads.app import Workload

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ExperimentPool",
    "RunCache",
    "RunRequest",
    "configure_defaults",
    "default_pool",
]

#: Bump when the simulation model or the result layout changes in a way
#: that makes previously persisted runs incomparable.  Part of every
#: cache key, and verified again on disk load.
#: v2: NodeResult grew the NodeHealth record and requests carry a fault
#: plan, so v1 pickles no longer match the result layout.
#: v3: NodeResult grew a telemetry snapshot and RunResult the hardware
#: frequency ranges, so v2 pickles no longer match the result layout.
#: v4: NodeResult grew per-node ``seconds`` (accounting divides a
#: node's energy by its own elapsed time), so v3 pickles would restore
#: with zero-length node durations.
#: v5: EarConfig grew ``coefficients_path`` (the projection-model
#: coefficient source); it is a compared field, so the canonical config
#: encoding — and with it every cache key — changed shape.
#: v6: requests carry the inner-loop ``engine`` choice
#: (scalar/batched).  The engines are equivalent only to 1e-9, not
#: bit-exactly, so a cached scalar run must never answer a batched
#: request (or vice versa) — the engine is part of the key.
#: This comment block is the authoritative version history; docs point
#: here instead of repeating the number.
CACHE_FORMAT_VERSION = 6


# -- content hashing ---------------------------------------------------------


def _canonical(obj):
    """Reduce a value to a JSON-serialisable canonical form.

    Dataclasses flatten to their compared fields (``compare=False``
    fields like ``Workload._calibrated`` are execution details, not
    identity); floats go through ``repr`` for exact round-tripping.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.compare
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, float):
        return repr(obj)
    if obj is None or isinstance(obj, (str, int, bool)):
        return obj
    return repr(obj)


@dataclass(frozen=True)
class RunRequest:
    """One content-addressed simulation job.

    ``workload`` is the *unscaled* workload; ``scale`` is applied at
    execution time so the key stays stable across callers that scale
    eagerly vs. lazily.
    """

    workload: Workload
    ear_config: EarConfig | None
    seed: int
    scale: float = 1.0
    pin_cpu_ghz: float | None = None
    pin_uncore_ghz: float | None = None
    noise_sigma: float = DEFAULT_NOISE_SIGMA
    node_speed_spread: float = 0.0
    #: fault regime of the run; part of the cache key, so a cached
    #: clean run is never returned for a faulted request (or vice
    #: versa).  An all-zero (disabled) plan is canonicalised to None so
    #: it shares the clean run's cache entry, which it is bit-identical
    #: to by construction.
    fault_plan: FaultPlan | None = None
    #: inner-loop implementation (see :class:`repro.sim.engine
    #: .SimulationEngine`); part of the cache key because the two
    #: engines agree only within the equivalence gate's tolerance.
    engine: str = "scalar"
    #: record structured telemetry events during the run.  Deliberately
    #: ``compare=False`` and absent from :meth:`key`: recorders never
    #: touch the physics, so a telemetry-bearing result *is* the plain
    #: result plus extra observability — the two may share one cache
    #: entry (the pool upgrades an entry in place when a telemetry
    #: request misses on a telemetry-free cached run).
    telemetry: bool = dataclasses.field(default=False, compare=False)

    def key(self) -> str:
        """Content-address of this request (SHA-256 over compared fields)."""
        plan = self.fault_plan
        if plan is not None and not plan.enabled:
            plan = None
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "workload": _canonical(self.workload),
            "config": _canonical(self.ear_config),
            "seed": self.seed,
            "scale": repr(self.scale),
            "pin_cpu_ghz": _canonical(self.pin_cpu_ghz),
            "pin_uncore_ghz": _canonical(self.pin_uncore_ghz),
            "noise_sigma": repr(self.noise_sigma),
            "node_speed_spread": repr(self.node_speed_spread),
            "fault_plan": _canonical(plan),
            "engine": self.engine,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def execute(self) -> RunResult:
        """Run the simulation this request describes (cache-oblivious)."""
        wl = (
            self.workload
            if self.scale == 1.0
            else self.workload.scaled_iterations(self.scale)
        )
        return run_workload(
            wl,
            ear_config=self.ear_config,
            seed=self.seed,
            noise_sigma=self.noise_sigma,
            pin_cpu_ghz=self.pin_cpu_ghz,
            pin_uncore_ghz=self.pin_uncore_ghz,
            node_speed_spread=self.node_speed_spread,
            fault_plan=self.fault_plan,
            telemetry=self.telemetry,
            engine=self.engine,
        )


def _execute_request(item: tuple[str, RunRequest]) -> tuple[str, RunResult]:
    """Module-level worker entry point (must be picklable)."""
    key, request = item
    return key, request.execute()


# -- the cache ---------------------------------------------------------------


@dataclass
class CacheStats:
    """Observability counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.disk_hits = self.stores = 0


class RunCache:
    """Two-layer (memory + optional disk) store of :class:`RunResult`.

    ``directory=None`` keeps the cache purely in-process — the unit-test
    default.  With a directory, every stored run is pickled to
    ``<key>.run`` together with the format version, atomically
    (tempfile + rename), and survives across processes and sessions.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        version: int = CACHE_FORMAT_VERSION,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.version = version
        self.stats = CacheStats()
        self._memory: dict[str, RunResult] = {}

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> RunResult | None:
        """Cached result for a key, trying memory then disk."""
        result = self._memory.get(key)
        if result is not None:
            self.stats.hits += 1
            return result
        result = self._load_disk(key)
        if result is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._memory[key] = result
            return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: RunResult) -> None:
        """Store a result in memory and (if configured) on disk."""
        self._memory[key] = result
        self.stats.stores += 1
        if self.directory is not None:
            self._store_disk(key, result)

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer; with ``disk=True`` also the files."""
        self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.run"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk layer ----------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.run"

    def _load_disk(self, key: str) -> RunResult | None:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                version, result = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # corrupt or foreign file: treat as a miss and drop it
            path.unlink(missing_ok=True)
            return None
        if version != self.version or not isinstance(result, RunResult):
            path.unlink(missing_ok=True)
            return None
        return result

    def _store_disk(self, key: str, result: RunResult) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((self.version, result), fh)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise


# -- the pool ----------------------------------------------------------------


@dataclass
class PoolStats:
    """What the pool actually did (vs. what the cache absorbed)."""

    simulations: int = 0
    batches: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.simulations = self.batches = 0


class ExperimentPool:
    """Executes batches of :class:`RunRequest` with caching + fan-out.

    ``jobs`` is the worker-process count: 1 (the default) executes
    in-process and spawns nothing; higher values fan each batch's cache
    misses out over a ``ProcessPoolExecutor``.  Results always come
    back ordered by submission, so any reduction over them (averaging,
    comparison) is bit-identical to the serial execution.
    """

    def __init__(
        self, *, jobs: int | None = None, cache: RunCache | None = None
    ) -> None:
        self.jobs = max(1, int(jobs)) if jobs else 1
        self.cache = cache
        self.stats = PoolStats()
        #: memo of assembled AveragedResult objects so repeated identical
        #: requests return the same object (cheap identity-based reuse
        #: by callers that build several tables in one session).
        self._averaged_memo: dict[tuple, object] = {}

    # -- execution -----------------------------------------------------------

    def run_many(self, requests: Sequence[RunRequest]) -> tuple[RunResult, ...]:
        """Execute a batch; return results in submission order.

        Duplicate requests inside one batch execute once.  Cache misses
        run concurrently when ``jobs > 1``.
        """
        keyed = [(req.key(), req) for req in requests]
        results: dict[str, RunResult] = {}
        pending: dict[str, RunRequest] = {}
        for key, req in keyed:
            # a telemetry-wanting duplicate upgrades an already-pending
            # plain request: one execution serves both callers.
            if key in pending:
                if req.telemetry and not pending[key].telemetry:
                    pending[key] = req
                continue
            if key in results:
                if req.telemetry and not results[key].has_telemetry:
                    pending[key] = req
                    del results[key]
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None and not (req.telemetry and not cached.has_telemetry):
                # telemetry is not part of the key, so a telemetry
                # request can hit a telemetry-free entry; re-run it and
                # upgrade the entry in place (same physics, more info).
                results[key] = cached
            else:
                pending[key] = req
        if pending:
            self.stats.batches += 1
            self.stats.simulations += len(pending)
            for key, result in self._execute(pending):
                results[key] = result
                if self.cache is not None:
                    self.cache.put(key, result)
        return tuple(results[key] for key, _ in keyed)

    def _execute(
        self, pending: Mapping[str, RunRequest]
    ) -> Iterable[tuple[str, RunResult]]:
        items = list(pending.items())
        if self.jobs <= 1 or len(items) <= 1:
            return [_execute_request(item) for item in items]
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(_execute_request, items))

    # -- high-level operations ----------------------------------------------

    def run_averaged(
        self,
        workload: Workload,
        config: EarConfig | None,
        *,
        config_name: str = "",
        seeds: Iterable[int],
        scale: float = 1.0,
        engine: str = "scalar",
    ):
        """Run one configuration once per seed and average.

        The cached runs carry no display name; ``config_name`` is
        stamped on the assembled :class:`AveragedResult` at retrieval,
        so a cache warmed under one name never leaks it to another
        requester — the staleness bug of the old module-global cache.
        """
        from .runner import AveragedResult

        seeds = tuple(seeds)
        requests = [
            RunRequest(
                workload=workload,
                ear_config=config,
                seed=s,
                scale=scale,
                engine=engine,
            )
            for s in seeds
        ]
        memo_key = (tuple(r.key() for r in requests), config_name)
        memoed = self._averaged_memo.get(memo_key)
        if memoed is not None:
            return memoed
        runs = self.run_many(requests)
        avg = AveragedResult.from_runs(workload.name, config_name, runs)
        self._averaged_memo[memo_key] = avg
        return avg

    def compare(
        self,
        workload: Workload,
        configs: Mapping[str, EarConfig | None],
        *,
        seeds: Iterable[int],
        scale: float = 1.0,
        engine: str = "scalar",
    ):
        """Evaluate several configurations against the ``none`` reference.

        All (config, seed) runs are submitted as *one* batch so the
        whole comparison saturates the worker pool, instead of
        parallelising only within one configuration at a time.
        """
        from .runner import Comparison

        seeds = tuple(seeds)
        if "none" not in configs:
            configs = {"none": None, **configs}
        # one flat batch warms the cache for every configuration...
        self.run_many(
            [
                RunRequest(
                    workload=workload,
                    ear_config=cfg,
                    seed=s,
                    scale=scale,
                    engine=engine,
                )
                for cfg in configs.values()
                for s in seeds
            ]
        )
        # ...then per-config assembly is pure cache hits.
        reference = self.run_averaged(
            workload,
            configs["none"],
            config_name="none",
            seeds=seeds,
            scale=scale,
            engine=engine,
        )
        out = {}
        for name, cfg in configs.items():
            if name == "none":
                continue
            result = self.run_averaged(
                workload,
                cfg,
                config_name=name,
                seeds=seeds,
                scale=scale,
                engine=engine,
            )
            out[name] = Comparison(
                workload=workload.name,
                config_name=name,
                reference=reference,
                result=result,
            )
        return out

    # -- maintenance ---------------------------------------------------------

    def clear(self, *, disk: bool = False) -> None:
        """Forget memoised averages and the cache's memory layer."""
        self._averaged_memo.clear()
        if self.cache is not None:
            self.cache.clear(disk=disk)

    def reset_stats(self) -> None:
        """Zero the pool's and the cache's counters."""
        self.stats.reset()
        if self.cache is not None:
            self.cache.stats.reset()


# -- process-default pool ----------------------------------------------------

_default_pool = ExperimentPool(jobs=1, cache=RunCache())


def default_pool() -> ExperimentPool:
    """The pool behind :func:`repro.experiments.runner.run_averaged`."""
    return _default_pool


def configure_defaults(
    *,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
) -> ExperimentPool:
    """Replace the process-default pool (CLI / benchmark harness hook).

    ``jobs=None`` keeps serial in-process execution; ``cache_dir=None``
    keeps the cache memory-only; ``use_cache=False`` disables caching
    entirely (every request simulates).
    """
    global _default_pool
    cache = RunCache(cache_dir) if use_cache else None
    _default_pool = ExperimentPool(jobs=jobs, cache=cache)
    return _default_pool
