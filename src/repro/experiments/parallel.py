"""Parallel experiment execution with a persistent run cache.

The paper's methodology multiplies work: every table and figure
averages three seeded runs per configuration per workload, and a full
regeneration touches hundreds of (workload, config, seed, scale)
combinations — an embarrassingly parallel sweep.  This module provides
the execution layer behind :func:`repro.experiments.runner.run_averaged`
and :func:`repro.experiments.runner.compare`:

:class:`RunRequest`
    One simulation job, content-addressed.  The cache key is a SHA-256
    hash of the workload spec, the EAR configuration fields, the seed,
    the scale, the pin/noise parameters and a cache-format version —
    display names (``config_name``) are deliberately *not* part of the
    key or the cached value, so the same physical run requested under
    two different names shares one cache entry and is stamped with the
    requester's name on retrieval.

:class:`RunCache`
    Two-layer result cache: an in-process dict in front of an optional
    on-disk store (``results/.cache/`` by convention).  Disk entries
    are versioned; a format bump invalidates them wholesale.  Disk
    failures (full disk, revoked permissions, corrupt pickles) degrade
    the cache to its memory layer — counted and warned about once,
    never fatal to the batch and never silently swallowed.

:class:`ExperimentPool`
    Fans a batch of requests out over ``concurrent.futures``
    ``ProcessPoolExecutor`` workers and merges the results
    deterministically: outputs are ordered by submission key,
    independent of completion order, so averaged numbers are
    bit-identical to a serial run of the same seeds.

    The pool is *fault-tolerant*: a worker killed mid-batch
    (``BrokenProcessPool``) is respawned and only the incomplete
    requests are resubmitted; a request exceeding the
    :class:`~repro.experiments.resilient.RetryPolicy` wall-clock
    timeout has its worker killed and is retried under seeded
    exponential backoff; a request that keeps failing is quarantined
    and returned as a structured
    :class:`~repro.experiments.resilient.FailedRun` instead of raising,
    so a three-hour campaign never collapses to an exception at hour
    three.  An optional
    :class:`~repro.experiments.journal.CampaignJournal` records every
    submitted/completed/failed request as it happens (fsync'd), which
    is what makes campaigns resumable.

All simulation stochasticity flows from the per-run seed, so executing
a request in a worker process yields exactly the bytes a serial
execution would — including after crash recovery and retries, which
change *when* a request executes but never *what* it computes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..ear.config import EarConfig
from ..errors import ExperimentError
from ..sim.engine import DEFAULT_NOISE_SIGMA, run_workload
from ..sim.faults import FaultPlan
from ..sim.result import RunResult
from ..telemetry.recorder import NULL_RECORDER, Recorder
from ..workloads.app import Workload
from .journal import CampaignJournal
from .resilient import DEFAULT_RETRY_POLICY, AttemptRecord, FailedRun, RetryPolicy

__all__ = [
    "AsyncPoolBridge",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ExperimentPool",
    "FailedRun",
    "RetryPolicy",
    "RunCache",
    "RunRequest",
    "configure_defaults",
    "default_pool",
]

#: Bump when the simulation model or the result layout changes in a way
#: that makes previously persisted runs incomparable.  Part of every
#: cache key, and verified again on disk load.
#: v2: NodeResult grew the NodeHealth record and requests carry a fault
#: plan, so v1 pickles no longer match the result layout.
#: v3: NodeResult grew a telemetry snapshot and RunResult the hardware
#: frequency ranges, so v2 pickles no longer match the result layout.
#: v4: NodeResult grew per-node ``seconds`` (accounting divides a
#: node's energy by its own elapsed time), so v3 pickles would restore
#: with zero-length node durations.
#: v5: EarConfig grew ``coefficients_path`` (the projection-model
#: coefficient source); it is a compared field, so the canonical config
#: encoding — and with it every cache key — changed shape.
#: v6: requests carry the inner-loop ``engine`` choice
#: (scalar/batched).  The engines are equivalent only to 1e-9, not
#: bit-exactly, so a cached scalar run must never answer a batched
#: request (or vice versa) — the engine is part of the key.
#: (The PR-7 infrastructure fault channels deliberately did NOT bump
#: this version: they are ``compare=False`` fields on FaultPlan, never
#: part of the content hash, because they perturb the *execution tier*,
#: not the job physics.)
#: v7: NodeConfig grew ``uncore_backend`` and ``dies_per_socket``
#: (compared fields — the control path changes the physics on TPMI via
#: the ELC floor), so the canonical node encoding inside every key
#: changed shape.
#: This comment block is the authoritative version history; docs point
#: here instead of repeating the number.
CACHE_FORMAT_VERSION = 7


# -- content hashing ---------------------------------------------------------


def _canonical(obj):
    """Reduce a value to a JSON-serialisable canonical form.

    Dataclasses flatten to their compared fields (``compare=False``
    fields like ``Workload._calibrated`` are execution details, not
    identity); floats go through ``repr`` for exact round-tripping.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.compare
        }
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, float):
        return repr(obj)
    if obj is None or isinstance(obj, (str, int, bool)):
        return obj
    return repr(obj)


@dataclass(frozen=True)
class RunRequest:
    """One content-addressed simulation job.

    ``workload`` is the *unscaled* workload; ``scale`` is applied at
    execution time so the key stays stable across callers that scale
    eagerly vs. lazily.
    """

    workload: Workload
    ear_config: EarConfig | None
    seed: int
    scale: float = 1.0
    pin_cpu_ghz: float | None = None
    pin_uncore_ghz: float | None = None
    noise_sigma: float = DEFAULT_NOISE_SIGMA
    node_speed_spread: float = 0.0
    #: fault regime of the run; part of the cache key, so a cached
    #: clean run is never returned for a faulted request (or vice
    #: versa).  Only the *hardware* channels participate: the
    #: infrastructure channels (node crash, EARDBD restart) are
    #: ``compare=False`` fields that perturb the cluster control plane,
    #: never the job physics, so a plan with nothing but infra rates
    #: canonicalises to None and shares the clean run's cache entry.
    fault_plan: FaultPlan | None = None
    #: inner-loop implementation (see :class:`repro.sim.engine
    #: .SimulationEngine`); part of the cache key because the two
    #: engines agree only within the equivalence gate's tolerance.
    engine: str = "scalar"
    #: record structured telemetry events during the run.  Deliberately
    #: ``compare=False`` and absent from :meth:`key`: recorders never
    #: touch the physics, so a telemetry-bearing result *is* the plain
    #: result plus extra observability — the two may share one cache
    #: entry (the pool upgrades an entry in place when a telemetry
    #: request misses on a telemetry-free cached run).
    telemetry: bool = dataclasses.field(default=False, compare=False)

    def key(self) -> str:
        """Content-address of this request (SHA-256 over compared fields)."""
        plan = self.fault_plan
        if plan is not None and not plan.enabled:
            plan = None
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "workload": _canonical(self.workload),
            "config": _canonical(self.ear_config),
            "seed": self.seed,
            "scale": repr(self.scale),
            "pin_cpu_ghz": _canonical(self.pin_cpu_ghz),
            "pin_uncore_ghz": _canonical(self.pin_uncore_ghz),
            "noise_sigma": repr(self.noise_sigma),
            "node_speed_spread": repr(self.node_speed_spread),
            "fault_plan": _canonical(plan),
            "engine": self.engine,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def execute(self) -> RunResult:
        """Run the simulation this request describes (cache-oblivious)."""
        wl = (
            self.workload
            if self.scale == 1.0
            else self.workload.scaled_iterations(self.scale)
        )
        return run_workload(
            wl,
            ear_config=self.ear_config,
            seed=self.seed,
            noise_sigma=self.noise_sigma,
            pin_cpu_ghz=self.pin_cpu_ghz,
            pin_uncore_ghz=self.pin_uncore_ghz,
            node_speed_spread=self.node_speed_spread,
            fault_plan=self.fault_plan,
            telemetry=self.telemetry,
            engine=self.engine,
        )


def _execute_request(item: tuple[str, RunRequest]) -> tuple[str, RunResult]:
    """Module-level worker entry point (must be picklable).

    The ``REPRO_TEST_KILL_WORKER`` / ``REPRO_TEST_HANG_WORKER``
    environment hooks let the chaos suite kill or wedge exactly one
    worker deterministically (the first execution creates the sentinel
    file, so retries proceed normally); both are inert unless the
    variable is set.
    """
    key, request = item
    _chaos_hook()
    return key, request.execute()


def _chaos_hook() -> None:
    """Test-only worker sabotage, armed via environment sentinels."""
    kill_sentinel = os.environ.get("REPRO_TEST_KILL_WORKER")
    if kill_sentinel:
        try:
            fd = os.open(kill_sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
    hang_sentinel = os.environ.get("REPRO_TEST_HANG_WORKER")
    if hang_sentinel:
        try:
            fd = os.open(hang_sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            while True:  # wedged worker: only a SIGKILL gets us out
                time.sleep(3600)


# -- the cache ---------------------------------------------------------------


@dataclass
class CacheStats:
    """Observability counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    #: disk writes that failed (full disk, permissions); the result
    #: stays served from the memory layer.
    write_failures: int = 0
    #: corrupt/foreign/stale disk entries dropped on load.
    corrupt_drops: int = 0
    #: memory-layer entries evicted by the LRU bound (disk copies, if
    #: configured, survive and re-load on the next hit).
    memory_evictions: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.disk_hits = self.stores = 0
        self.write_failures = self.corrupt_drops = self.memory_evictions = 0


class RunCache:
    """Two-layer (memory + optional disk) store of :class:`RunResult`.

    ``directory=None`` keeps the cache purely in-process — the unit-test
    default.  With a directory, every stored run is pickled to
    ``<key>.run`` together with the format version, atomically
    (tempfile + rename), and survives across processes and sessions.

    Disk-layer failures never propagate: a failed write is counted in
    :attr:`CacheStats.write_failures` and warned about once per cache
    instance (the batch continues on the memory layer), a corrupt entry
    is dropped and counted in :attr:`CacheStats.corrupt_drops`.

    ``max_memory_entries`` bounds the memory layer with LRU eviction —
    the knob the long-lived service tier uses to keep a read-through
    cache from growing without bound.  Evicted entries that were
    persisted to disk transparently re-load on their next hit.  The
    memory layer is guarded by a lock, so concurrently pumping service
    workers can share one cache.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        version: int = CACHE_FORMAT_VERSION,
        max_memory_entries: int | None = None,
    ) -> None:
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ExperimentError("max_memory_entries must be >= 1 (or None)")
        self.directory = Path(directory) if directory is not None else None
        self.version = version
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        self._memory: dict[str, RunResult] = {}
        self._lock = threading.RLock()
        self._warned_write_failure = False

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> RunResult | None:
        """Cached result for a key, trying memory then disk."""
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                if self.max_memory_entries is not None:
                    self._memory[key] = self._memory.pop(key)  # LRU touch
                self.stats.hits += 1
                return result
        result = self._load_disk(key)
        if result is not None:
            with self._lock:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._memory[key] = result
                self._evict_over_bound()
            return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: RunResult) -> None:
        """Store a result in memory and (if configured) on disk.

        A disk failure degrades this put to memory-only: counted,
        warned once per cache instance, never raised — losing cache
        persistence must not lose the batch.
        """
        with self._lock:
            if self.max_memory_entries is not None:
                self._memory.pop(key, None)  # re-insert at LRU tail
            self._memory[key] = result
            self.stats.stores += 1
            self._evict_over_bound()
        if self.directory is None:
            return
        try:
            self._store_disk(key, result)
        except Exception as exc:
            self.stats.write_failures += 1
            if not self._warned_write_failure:
                self._warned_write_failure = True
                warnings.warn(
                    f"run-cache disk write to {self.directory} failed "
                    f"({exc!r}); continuing with the in-memory layer only "
                    "(further failures are counted, not repeated)",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _evict_over_bound(self) -> None:
        """Drop least-recently-used entries past the memory bound."""
        if self.max_memory_entries is None:
            return
        while len(self._memory) > self.max_memory_entries:
            oldest = next(iter(self._memory))
            del self._memory[oldest]
            self.stats.memory_evictions += 1

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory layer; with ``disk=True`` also the files."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*.run"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk layer ----------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.run"

    def _load_disk(self, key: str) -> RunResult | None:
        if self.directory is None:
            return None
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                version, result = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # corrupt or foreign file: drop it, count it, treat as miss
            self.stats.corrupt_drops += 1
            path.unlink(missing_ok=True)
            return None
        if version != self.version or not isinstance(result, RunResult):
            path.unlink(missing_ok=True)
            return None
        return result

    def _store_disk(self, key: str, result: RunResult) -> None:
        assert self.directory is not None
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump((self.version, result), fh)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise


# -- the pool ----------------------------------------------------------------


@dataclass
class PoolStats:
    """What the pool actually did (vs. what the cache absorbed)."""

    simulations: int = 0
    batches: int = 0
    #: resubmissions after a failed attempt (any kind).
    retries: int = 0
    #: attempts lost to a per-job wall-clock timeout.
    timeouts: int = 0
    #: worker-pool breakages survived (respawn + resubmit).
    worker_crashes: int = 0
    #: requests quarantined as poison jobs (returned as FailedRun).
    quarantined: int = 0
    #: disk-cache write failures observed while storing results.
    cache_write_failures: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.simulations = self.batches = 0
        self.retries = self.timeouts = self.worker_crashes = 0
        self.quarantined = self.cache_write_failures = 0


class ExperimentPool:
    """Executes batches of :class:`RunRequest` with caching + fan-out.

    ``jobs`` is the worker-process count: 1 (the default) executes
    in-process and spawns nothing; higher values fan each batch's cache
    misses out over a ``ProcessPoolExecutor``.  Results always come
    back ordered by submission, so any reduction over them (averaging,
    comparison) is bit-identical to the serial execution.

    ``retry`` is the pool's :class:`RetryPolicy` — worker crashes and
    timeouts are retried under seeded exponential backoff, and a
    request that exhausts its attempts comes back as a
    :class:`FailedRun` in the result tuple instead of raising.
    ``recorder`` receives the resilience telemetry
    (``pool/retry|timeout|worker_crash|quarantine|cache_write_failure``);
    ``journal`` (assignable after construction) receives a write-ahead
    record of every submitted/completed/failed request.
    """

    def __init__(
        self,
        *,
        jobs: int | None = None,
        cache: RunCache | None = None,
        retry: RetryPolicy | None = None,
        recorder: Recorder = NULL_RECORDER,
        journal: CampaignJournal | None = None,
    ) -> None:
        self.jobs = max(1, int(jobs)) if jobs else 1
        self.cache = cache
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.recorder = recorder
        #: write-ahead campaign journal; assign/clear around a campaign.
        self.journal = journal
        self.stats = PoolStats()
        #: memo of assembled AveragedResult objects so repeated identical
        #: requests return the same object (cheap identity-based reuse
        #: by callers that build several tables in one session).
        self._averaged_memo: dict[tuple, object] = {}

    # -- execution -----------------------------------------------------------

    def run_many(
        self, requests: Sequence[RunRequest]
    ) -> tuple[RunResult | FailedRun, ...]:
        """Execute a batch; return results in submission order.

        Duplicate requests inside one batch execute once.  Cache misses
        run concurrently when ``jobs > 1``.  Requests that exhaust the
        retry policy come back as :class:`FailedRun` entries (never
        cached) — the batch itself does not raise for a poison job.
        """
        keyed = [(req.key(), req) for req in requests]
        results: dict[str, RunResult | FailedRun] = {}
        pending: dict[str, RunRequest] = {}
        for key, req in keyed:
            # a telemetry-wanting duplicate upgrades an already-pending
            # plain request: one execution serves both callers.
            if key in pending:
                if req.telemetry and not pending[key].telemetry:
                    pending[key] = req
                continue
            if key in results:
                if req.telemetry and not getattr(results[key], "has_telemetry", True):
                    pending[key] = req
                    del results[key]
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None and not (req.telemetry and not cached.has_telemetry):
                # telemetry is not part of the key, so a telemetry
                # request can hit a telemetry-free entry; re-run it and
                # upgrade the entry in place (same physics, more info).
                results[key] = cached
                if self.journal is not None:
                    self.journal.submitted(key, workload=req.workload.name, seed=req.seed)
                    self.journal.completed(key, cached=True)
            else:
                pending[key] = req
        if pending:
            self.stats.batches += 1
            self.stats.simulations += len(pending)
            if self.journal is not None:
                for key, req in pending.items():
                    self.journal.submitted(
                        key, workload=req.workload.name, seed=req.seed
                    )
            for key, result in self._execute(pending, self._on_done):
                results[key] = result
        return tuple(results[key] for key, _ in keyed)

    def _on_done(self, key: str, result: RunResult | FailedRun) -> None:
        """Per-completion hook: cache + journal as soon as it is known."""
        if isinstance(result, FailedRun):
            if self.journal is not None:
                self.journal.failed(
                    key,
                    error=result.error or result.error_kind,
                    attempts=result.n_attempts,
                )
            return
        if self.cache is not None:
            before = self.cache.stats.write_failures
            self.cache.put(key, result)
            failures = self.cache.stats.write_failures - before
            if failures:
                self.stats.cache_write_failures += failures
                if self.recorder.enabled:
                    self.recorder.event(
                        "pool", "cache_write_failure", key=key
                    )
        if self.journal is not None:
            self.journal.completed(key)

    # -- the resilient execution core ----------------------------------------

    def _execute(
        self,
        pending: Mapping[str, RunRequest],
        on_done: Callable[[str, RunResult | FailedRun], None],
    ) -> Iterable[tuple[str, RunResult | FailedRun]]:
        items = list(pending.items())
        needs_pool = self.jobs > 1 and (
            len(items) > 1 or self.retry.timeout_s is not None
        )
        if not needs_pool:
            return self._execute_serial(items, on_done)
        return self._execute_parallel(items, on_done)

    def _execute_serial(
        self,
        items: list[tuple[str, RunRequest]],
        on_done: Callable[[str, RunResult | FailedRun], None],
    ) -> list[tuple[str, RunResult | FailedRun]]:
        """In-process execution with bounded retry and quarantine.

        No worker process means no crash recovery and no enforceable
        wall-clock timeout — but task errors still quarantine instead
        of killing the batch, with the same attempt accounting as the
        pooled path.
        """
        out: list[tuple[str, RunResult | FailedRun]] = []
        for key, req in items:
            attempts: list[AttemptRecord] = []
            while True:
                try:
                    result: RunResult | FailedRun = req.execute()
                except Exception as exc:  # quarantine boundary
                    attempt_no = len(attempts) + 1
                    if attempt_no < self.retry.attempts_for("task_error"):
                        delay = self.retry.backoff_s(key, attempt_no)
                        attempts.append(
                            AttemptRecord(attempt_no, "task_error", repr(exc), delay)
                        )
                        self._note_retry(key, "task_error", delay)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    attempts.append(AttemptRecord(attempt_no, "task_error", repr(exc)))
                    result = self._quarantine(key, req, attempts)
                on_done(key, result)
                out.append((key, result))
                break
        return out

    def _execute_parallel(
        self,
        items: list[tuple[str, RunRequest]],
        on_done: Callable[[str, RunResult | FailedRun], None],
    ) -> list[tuple[str, RunResult | FailedRun]]:
        """Worker-pool execution with crash recovery and timeouts.

        The loop keeps three pieces of state: ``ready`` (keys awaiting
        submission), ``inflight`` (future → key on the live executor)
        and ``resolved`` (final results).  A broken pool charges every
        in-flight request one ``worker_crash`` attempt (the pool cannot
        attribute the death) and respawns; an expired per-job deadline
        kills the pool — the only way to stop a running worker — and
        charges only the overdue request, resubmitting bystanders free
        of charge.
        """
        policy = self.retry
        requests = dict(items)
        attempts: dict[str, list[AttemptRecord]] = {key: [] for key, _ in items}
        resolved: dict[str, RunResult | FailedRun] = {}
        ready: deque[str] = deque(requests)
        inflight: dict = {}
        deadlines: dict[str, float] = {}
        executor: ProcessPoolExecutor | None = None
        backoff_due = 0.0
        try:
            while ready or inflight:
                if executor is None:
                    executor = ProcessPoolExecutor(
                        max_workers=max(1, min(self.jobs, len(ready) + len(inflight)))
                    )
                if backoff_due > 0:
                    time.sleep(backoff_due)
                    backoff_due = 0.0
                while ready:
                    key = ready.popleft()
                    future = executor.submit(_execute_request, (key, requests[key]))
                    inflight[future] = key
                    if policy.timeout_s is not None:
                        deadlines[key] = time.monotonic() + policy.timeout_s
                wait_s = None
                if deadlines:
                    wait_s = max(
                        0.0,
                        min(deadlines[k] for k in inflight.values())
                        - time.monotonic(),
                    )
                done, _ = wait(set(inflight), timeout=wait_s, return_when=FIRST_COMPLETED)
                if not done:
                    # a per-job deadline expired with nothing finishing:
                    # the overdue worker must be killed, which costs us
                    # the whole pool.
                    now = time.monotonic()
                    overdue = {
                        k
                        for k in inflight.values()
                        if deadlines.get(k, now + 1.0) <= now
                    }
                    self._kill_executor(executor)
                    executor = None
                    for future, key in list(inflight.items()):
                        del inflight[future]
                        deadlines.pop(key, None)
                        if key in overdue:
                            self.stats.timeouts += 1
                            if self.recorder.enabled:
                                self.recorder.event(
                                    "pool", "timeout", key=key,
                                    timeout_s=policy.timeout_s,
                                )
                            backoff_due = max(
                                backoff_due,
                                self._charge(
                                    key, "timeout", "", requests, attempts,
                                    resolved, ready, on_done,
                                ),
                            )
                        else:
                            ready.append(key)
                    continue
                crashed = False
                for future in done:
                    key = inflight.pop(future)
                    deadlines.pop(key, None)
                    try:
                        _, result = future.result()
                    except BrokenProcessPool:
                        crashed = True
                        backoff_due = max(
                            backoff_due,
                            self._charge(
                                key, "worker_crash", "", requests, attempts,
                                resolved, ready, on_done,
                            ),
                        )
                    except Exception as exc:
                        backoff_due = max(
                            backoff_due,
                            self._charge(
                                key, "task_error", repr(exc), requests,
                                attempts, resolved, ready, on_done,
                            ),
                        )
                    else:
                        resolved[key] = result
                        on_done(key, result)
                if crashed:
                    # the executor is dead; every remaining in-flight
                    # request lost its work with it.
                    self.stats.worker_crashes += 1
                    if self.recorder.enabled:
                        self.recorder.event(
                            "pool", "worker_crash", n_inflight=len(inflight)
                        )
                    for future, key in list(inflight.items()):
                        del inflight[future]
                        deadlines.pop(key, None)
                        backoff_due = max(
                            backoff_due,
                            self._charge(
                                key, "worker_crash", "", requests, attempts,
                                resolved, ready, on_done,
                            ),
                        )
                    self._kill_executor(executor)
                    executor = None
        except BaseException:
            if executor is not None:
                self._kill_executor(executor)
            raise
        if executor is not None:
            executor.shutdown(wait=True)
        return [(key, resolved[key]) for key, _ in items]

    def _charge(
        self,
        key: str,
        kind: str,
        error: str,
        requests: Mapping[str, RunRequest],
        attempts: dict[str, list[AttemptRecord]],
        resolved: dict[str, RunResult | FailedRun],
        ready: deque,
        on_done: Callable[[str, RunResult | FailedRun], None],
    ) -> float:
        """Charge one failed attempt; requeue or quarantine.

        Returns the backoff delay owed before the next submission round
        (0 when the request was quarantined).
        """
        attempt_no = len(attempts[key]) + 1
        if attempt_no < self.retry.attempts_for(kind):
            delay = self.retry.backoff_s(key, attempt_no)
            attempts[key].append(AttemptRecord(attempt_no, kind, error, delay))
            self._note_retry(key, kind, delay)
            ready.append(key)
            return delay
        attempts[key].append(AttemptRecord(attempt_no, kind, error))
        failed = self._quarantine(key, requests[key], attempts[key])
        resolved[key] = failed
        on_done(key, failed)
        return 0.0

    def _note_retry(self, key: str, kind: str, delay: float) -> None:
        self.stats.retries += 1
        if self.recorder.enabled:
            self.recorder.event(
                "pool", "retry", key=key, kind=kind, backoff_s=delay
            )

    def _quarantine(
        self, key: str, req: RunRequest, attempts: list[AttemptRecord]
    ) -> FailedRun:
        failed = FailedRun(
            key=key,
            workload=req.workload.name,
            seed=req.seed,
            attempts=tuple(attempts),
        )
        self.stats.quarantined += 1
        if self.recorder.enabled:
            self.recorder.event(
                "pool",
                "quarantine",
                key=key,
                workload=failed.workload,
                seed=failed.seed,
                kind=failed.error_kind,
                attempts=failed.n_attempts,
            )
        warnings.warn(
            f"experiment pool quarantined a poison job: {failed.describe()}",
            RuntimeWarning,
            stacklevel=3,
        )
        return failed

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Forcibly tear a pool down (wedged or broken workers)."""
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    # -- high-level operations ----------------------------------------------

    def run_averaged(
        self,
        workload: Workload,
        config: EarConfig | None,
        *,
        config_name: str = "",
        seeds: Iterable[int],
        scale: float = 1.0,
        engine: str = "scalar",
    ):
        """Run one configuration once per seed and average.

        The cached runs carry no display name; ``config_name`` is
        stamped on the assembled :class:`AveragedResult` at retrieval,
        so a cache warmed under one name never leaks it to another
        requester — the staleness bug of the old module-global cache.

        Quarantined seeds are *excluded* from the average and counted
        in ``AveragedResult.n_failed`` (coverage degrades gracefully);
        only a batch with zero surviving seeds raises.
        """
        from .runner import AveragedResult

        seeds = tuple(seeds)
        requests = [
            RunRequest(
                workload=workload,
                ear_config=config,
                seed=s,
                scale=scale,
                engine=engine,
            )
            for s in seeds
        ]
        memo_key = (tuple(r.key() for r in requests), config_name)
        memoed = self._averaged_memo.get(memo_key)
        if memoed is not None:
            return memoed
        runs = self.run_many(requests)
        failures = tuple(r for r in runs if isinstance(r, FailedRun))
        survivors = tuple(r for r in runs if not isinstance(r, FailedRun))
        if not survivors:
            raise ExperimentError(
                f"all {len(runs)} seeded runs of {workload.name!r} "
                f"({config_name or 'unnamed config'}) failed; first: "
                f"{failures[0].describe()}"
            )
        if failures:
            warnings.warn(
                f"{workload.name} ({config_name or 'unnamed config'}): "
                f"averaging over {len(survivors)}/{len(runs)} seeds — "
                + "; ".join(f.describe() for f in failures),
                RuntimeWarning,
                stacklevel=2,
            )
        avg = AveragedResult.from_runs(
            workload.name, config_name, survivors, n_failed=len(failures)
        )
        if not failures:
            # a degraded average is never memoised: the next request
            # should retry the failed seeds, not pin the gap.
            self._averaged_memo[memo_key] = avg
        return avg

    def compare(
        self,
        workload: Workload,
        configs: Mapping[str, EarConfig | None],
        *,
        seeds: Iterable[int],
        scale: float = 1.0,
        engine: str = "scalar",
    ):
        """Evaluate several configurations against the ``none`` reference.

        All (config, seed) runs are submitted as *one* batch so the
        whole comparison saturates the worker pool, instead of
        parallelising only within one configuration at a time.
        """
        from .runner import Comparison

        seeds = tuple(seeds)
        if "none" not in configs:
            configs = {"none": None, **configs}
        # one flat batch warms the cache for every configuration...
        self.run_many(
            [
                RunRequest(
                    workload=workload,
                    ear_config=cfg,
                    seed=s,
                    scale=scale,
                    engine=engine,
                )
                for cfg in configs.values()
                for s in seeds
            ]
        )
        # ...then per-config assembly is pure cache hits.
        reference = self.run_averaged(
            workload,
            configs["none"],
            config_name="none",
            seeds=seeds,
            scale=scale,
            engine=engine,
        )
        out = {}
        for name, cfg in configs.items():
            if name == "none":
                continue
            result = self.run_averaged(
                workload,
                cfg,
                config_name=name,
                seeds=seeds,
                scale=scale,
                engine=engine,
            )
            out[name] = Comparison(
                workload=workload.name,
                config_name=name,
                reference=reference,
                result=result,
            )
        return out

    # -- maintenance ---------------------------------------------------------

    def clear(self, *, disk: bool = False) -> None:
        """Forget memoised averages and the cache's memory layer."""
        self._averaged_memo.clear()
        if self.cache is not None:
            self.cache.clear(disk=disk)

    def reset_stats(self) -> None:
        """Zero the pool's and the cache's counters."""
        self.stats.reset()
        if self.cache is not None:
            self.cache.stats.reset()


# -- async submission bridge -------------------------------------------------


class AsyncPoolBridge:
    """Bounded asyncio façade over a (blocking) :class:`ExperimentPool`.

    The service tier's event loop must never block on simulation work,
    and must not buffer unbounded work either.  The bridge runs
    blocking callables (``pool.run_many`` batches, or whole
    simulation-stepping closures) on worker threads, capped at
    ``max_inflight`` concurrent dispatches: excess callers queue on the
    internal semaphore, and :attr:`saturated` lets the ingress path
    shed load *before* queueing (the backpressure signal the server
    turns into a ``backpressure`` rejection).
    """

    def __init__(self, pool: ExperimentPool, *, max_inflight: int = 2) -> None:
        import asyncio

        if max_inflight < 1:
            raise ExperimentError("max_inflight must be >= 1")
        self.pool = pool
        self.max_inflight = max_inflight
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._inflight = 0
        self._peak_inflight = 0
        self._dispatched = 0

    async def call(self, fn: Callable, /, *args, **kwargs):
        """Run one blocking callable on a worker thread, bounded."""
        import asyncio

        async with self._semaphore:
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            self._dispatched += 1
            try:
                return await asyncio.to_thread(fn, *args, **kwargs)
            finally:
                self._inflight -= 1

    async def run_many(self, requests: Sequence[RunRequest]):
        """Async counterpart of :meth:`ExperimentPool.run_many`."""
        return await self.call(self.pool.run_many, list(requests))

    @property
    def inflight(self) -> int:
        """Dispatches currently executing on worker threads."""
        return self._inflight

    @property
    def peak_inflight(self) -> int:
        """High-water mark of concurrent dispatches."""
        return self._peak_inflight

    @property
    def dispatched(self) -> int:
        """Total dispatches since construction."""
        return self._dispatched

    @property
    def saturated(self) -> bool:
        """True when a new call would have to wait for a slot."""
        return self._semaphore.locked()


# -- process-default pool ----------------------------------------------------

_default_pool = ExperimentPool(jobs=1, cache=RunCache())


def default_pool() -> ExperimentPool:
    """The pool behind :func:`repro.experiments.runner.run_averaged`."""
    return _default_pool


def configure_defaults(
    *,
    jobs: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
    retry: RetryPolicy | None = None,
) -> ExperimentPool:
    """Replace the process-default pool (CLI / benchmark harness hook).

    ``jobs=None`` keeps serial in-process execution; ``cache_dir=None``
    keeps the cache memory-only; ``use_cache=False`` disables caching
    entirely (every request simulates).  ``retry`` installs a
    non-default :class:`RetryPolicy` (the CLI's ``--retries`` /
    ``--timeout`` flags).
    """
    global _default_pool
    cache = RunCache(cache_dir) if use_cache else None
    _default_pool = ExperimentPool(jobs=jobs, cache=cache, retry=retry)
    return _default_pool
