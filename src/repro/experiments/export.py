"""CSV export of tables and figure series.

The ASCII renderers in :mod:`repro.experiments.report` are for humans;
this module writes the same artefacts as CSV so external plotting
pipelines (matplotlib, gnuplot, spreadsheets) can regenerate the
paper's figures graphically without re-running the simulations.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Mapping, Sequence

__all__ = ["series_to_csv", "rows_to_csv", "write_csv"]


def _flatten(row: Mapping, prefix: str = "") -> dict:
    """Flatten one-level-nested dict rows (``{"me": {"x": 1}}`` ->
    ``{"me.x": 1}``) so table builders' output maps onto columns."""
    out: dict = {}
    for key, value in row.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(_flatten(value, prefix=f"{name}."))
        else:
            out[name] = value
    return out


def rows_to_csv(rows: Sequence[Mapping]) -> str:
    """Render a list of (possibly nested) row dicts as CSV text.

    The header is the *union* of every row's keys in stable
    first-appearance order — never just the first row's keys, which
    would silently drop columns that only appear later (e.g. health
    fields present only on faulted rows).  Rows missing a column get an
    empty cell.
    """
    if not rows:
        return ""
    flat = [_flatten(r) for r in rows]
    fieldnames: list[str] = []
    for row in flat:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in flat:
        writer.writerow(row)
    return buf.getvalue()


def series_to_csv(series_by_name: Mapping[str, Sequence[Mapping]]) -> str:
    """Render a figure's named series ({"HPCG": [...], "POP": [...]})
    as one CSV with a leading ``series`` column."""
    rows = []
    for name, series in series_by_name.items():
        for row in series:
            rows.append({"series": name, **row})
    return rows_to_csv(rows)


def write_csv(path: str | pathlib.Path, rows: Sequence[Mapping]) -> pathlib.Path:
    """Write row dicts to a CSV file; returns the path."""
    p = pathlib.Path(path)
    p.write_text(rows_to_csv(rows))
    return p
