"""ASCII rendering of tables and figure series, paper-vs-measured.

The benchmark harness pipes every artefact through these renderers so
``pytest benchmarks/ --benchmark-only`` output doubles as the
reproduction record (and EXPERIMENTS.md is generated from the same
code).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "pct", "ghz", "format_figure_series", "side_by_side"]


def pct(x: float) -> str:
    """Render a fraction as a percentage."""
    return f"{100.0 * x:+.1f}%"


def ghz(x: float) -> str:
    """Format a frequency in GHz for the report tables."""
    return f"{x:.2f}"


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """Fixed-width table with a title rule."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    head = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    body = "\n".join(
        " | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows
    )
    rule = "=" * len(sep)
    return f"\n{rule}\n{title}\n{rule}\n{head}\n{sep}\n{body}\n"


def format_figure_series(title: str, series: Sequence[Mapping]) -> str:
    """Render a figure's bar groups as a table."""
    headers = ["config", "time penalty", "power saving", "energy saving", "cpu", "imc"]
    rows = [
        [
            s["config"],
            pct(s["time_penalty"]),
            pct(s["power_saving"]),
            pct(s["energy_saving"]),
            ghz(s["avg_cpu_ghz"]),
            ghz(s["avg_imc_ghz"]),
        ]
        for s in series
    ]
    return format_table(title, headers, rows)


def side_by_side(measured: float, paper: float, *, as_pct: bool = True) -> str:
    """One cell showing 'measured (paper X)'."""
    if as_pct:
        return f"{pct(measured)} (paper {pct(paper)})"
    return f"{measured:.2f} (paper {paper:.2f})"
