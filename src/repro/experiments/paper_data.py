"""The paper's published numbers, transcribed for side-by-side reports.

Every table of the CLUSTER 2021 paper that the harness regenerates is
recorded here so reports (and EXPERIMENTS.md) can show paper-vs-measured
in one place.  Percentages are fractions (0.08 = 8 %); frequencies GHz.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "TABLE7",
]

#: Table I — kernels under min_energy with hardware IMC selection.
TABLE1 = {
    "BT-MZ.C.mpi": {"cpi": 0.38, "gbs": 10.19, "cpu_ghz": 2.38, "imc_ghz": 2.39},
    "LU.D.mpi": {"cpi": 1.04, "gbs": 75.93, "cpu_ghz": 2.31, "imc_ghz": 2.39},
}

#: Table II — single-node kernel characteristics at nominal frequency.
TABLE2 = {
    "BT-MZ.C": {"time_s": 145, "cpi": 0.39, "gbs": 28, "dc_power_w": 332},
    "SP-MZ.C": {"time_s": 264, "cpi": 0.53, "gbs": 78, "dc_power_w": 358},
    "BT.CUDA.D": {"time_s": 465, "cpi": 0.49, "gbs": 0.09, "dc_power_w": 305},
    "LU.CUDA.D": {"time_s": 256, "cpi": 0.54, "gbs": 0.19, "dc_power_w": 290},
    "DGEMM": {"time_s": 160, "cpi": 0.45, "gbs": 98, "dc_power_w": 369},
}

#: Table III — kernels: ME and ME+eU vs nominal (fractions).
TABLE3 = {
    "BT-MZ.C": {
        "me": {"time_penalty": 0.00, "power_saving": 0.00, "energy_saving": 0.00},
        "me_eufs": {"time_penalty": 0.01, "power_saving": 0.08, "energy_saving": 0.07},
    },
    "SP-MZ.C": {
        "me": {"time_penalty": 0.01, "power_saving": 0.00, "energy_saving": -0.01},
        "me_eufs": {"time_penalty": 0.00, "power_saving": 0.08, "energy_saving": 0.08},
    },
    "BT.CUDA.D": {
        "me": {"time_penalty": 0.00, "power_saving": 0.10, "energy_saving": 0.10},
        "me_eufs": {"time_penalty": 0.00, "power_saving": 0.11, "energy_saving": 0.11},
    },
    "LU.CUDA.D": {
        "me": {"time_penalty": 0.00, "power_saving": 0.00, "energy_saving": 0.00},
        "me_eufs": {"time_penalty": 0.00, "power_saving": 0.05, "energy_saving": 0.05},
    },
    "DGEMM": {
        "me": {"time_penalty": 0.00, "power_saving": 0.00, "energy_saving": 0.00},
        "me_eufs": {"time_penalty": 0.00, "power_saving": 0.02, "energy_saving": 0.01},
    },
}

#: Table IV — kernels: average CPU / IMC frequency per configuration.
TABLE4 = {
    "BT-MZ.C": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 2.38, "imc": 2.39},
        "me_eufs": {"cpu": 2.38, "imc": 1.98},
    },
    "SP-MZ.C": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 2.38, "imc": 2.39},
        "me_eufs": {"cpu": 2.38, "imc": 2.08},
    },
    "BT.CUDA.D": {
        "none": {"cpu": 2.44, "imc": 2.39},
        "me": {"cpu": 2.28, "imc": 1.51},
        "me_eufs": {"cpu": 2.13, "imc": 1.30},
    },
    "LU.CUDA.D": {
        "none": {"cpu": 2.02, "imc": 2.39},
        "me": {"cpu": 2.01, "imc": 2.39},
        "me_eufs": {"cpu": 2.05, "imc": 1.60},
    },
    "DGEMM": {
        "none": {"cpu": 2.18, "imc": 1.98},
        "me": {"cpu": 2.19, "imc": 1.95},
        "me_eufs": {"cpu": 2.19, "imc": 1.87},
    },
}

#: Table V — MPI application characteristics at nominal frequency.
TABLE5 = {
    "BQCD": {"time_s": 130.54, "cpi": 0.68, "gbs": 10.98, "dc_power_w": 302.15},
    "BT-MZ": {"time_s": 465.01, "cpi": 0.38, "gbs": 6.60, "dc_power_w": 320.74},
    "GROMACS(I)": {"time_s": 313.92, "cpi": 0.48, "gbs": 10.39, "dc_power_w": 319.35},
    "GROMACS(II)": {"time_s": 390.60, "cpi": 0.63, "gbs": 13.34, "dc_power_w": 315.48},
    "HPCG": {"time_s": 169.61, "cpi": 3.13, "gbs": 177.45, "dc_power_w": 339.88},
    "POP": {"time_s": 1533.03, "cpi": 0.72, "gbs": 100.66, "dc_power_w": 347.18},
    "DUMSES": {"time_s": 813.21, "cpi": 1.08, "gbs": 119.07, "dc_power_w": 333.69},
    "AFiD": {"time_s": 268.22, "cpi": 0.77, "gbs": 115.20, "dc_power_w": 333.65},
}

#: Table VI — applications: average CPU / IMC frequency per configuration.
TABLE6 = {
    "BQCD": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 2.37, "imc": 2.39},
        "me_eufs": {"cpu": 2.38, "imc": 2.19},
    },
    "BT-MZ": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 2.38, "imc": 2.39},
        "me_eufs": {"cpu": 2.38, "imc": 1.79},
    },
    "GROMACS(I)": {
        "none": {"cpu": 2.28, "imc": 2.39},
        "me": {"cpu": 2.27, "imc": 2.04},
        "me_eufs": {"cpu": 2.27, "imc": 1.91},
    },
    "GROMACS(II)": {
        "none": {"cpu": 2.29, "imc": 2.39},
        "me": {"cpu": 2.27, "imc": 1.45},
        "me_eufs": {"cpu": 2.27, "imc": 1.41},
    },
    "HPCG": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 1.75, "imc": 2.39},
        "me_eufs": {"cpu": 1.73, "imc": 2.29},
    },
    "POP": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 2.23, "imc": 2.35},
        "me_eufs": {"cpu": 2.23, "imc": 2.06},
    },
    "DUMSES": {
        "none": {"cpu": 2.38, "imc": 2.39},
        "me": {"cpu": 2.12, "imc": 2.39},
        "me_eufs": {"cpu": 2.12, "imc": 2.13},
    },
    "AFiD": {
        "none": {"cpu": 2.38, "imc": 2.35},
        "me": {"cpu": 2.20, "imc": 2.35},
        "me_eufs": {"cpu": 2.22, "imc": 2.17},
    },
}

#: Table VII — ME+eU (5 %/2 %): DC node vs RAPL PCK power savings.
TABLE7 = {
    "BQCD": {"dc_saving": 0.0469, "pck_saving": 0.1056},
    "BT-MZ": {"dc_saving": 0.1015, "pck_saving": 0.1503},
    "GROMACS(II)": {"dc_saving": 0.1406, "pck_saving": 0.1565},
    "HPCG": {"dc_saving": 0.1449, "pck_saving": 0.1688},
    "POP": {"dc_saving": 0.1025, "pck_saving": 0.1337},
    "DUMSES": {"dc_saving": 0.1313, "pck_saving": 0.1543},
    "AFiD": {"dc_saving": 0.1202, "pck_saving": 0.1337},
}
