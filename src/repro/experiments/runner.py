"""Experiment runner: averaged multi-run comparisons.

Mirrors the paper's methodology: "For all the experiments, three runs
have been executed, and we are using the average of all three.  For a
fair comparison, all the executions for each application have been done
using the same set of nodes" — here, the same node *configuration* and
matched seeds.

Execution and caching live in :mod:`repro.experiments.parallel`: runs
are content-addressed (workload spec, configuration fields, seed,
scale — *not* display names), served from a two-layer memory/disk
cache, and cache misses fan out over worker processes when the default
pool is configured with ``jobs > 1``.  The functions here are thin,
signature-stable wrappers over that pool, so one harness invocation
that builds several tables does not re-run shared baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ear.config import EarConfig
from ..sim.result import RunResult
from ..workloads.app import Workload
from .parallel import ExperimentPool, default_pool

__all__ = [
    "AveragedResult",
    "Comparison",
    "run_averaged",
    "compare",
    "standard_configs",
    "clear_run_cache",
]

DEFAULT_SEEDS = (1, 2, 3)


@dataclass(frozen=True)
class AveragedResult:
    """Mean over the repeated runs of one configuration."""

    workload: str
    config_name: str
    time_s: float
    dc_energy_j: float
    pck_energy_j: float
    avg_dc_power_w: float
    avg_pck_power_w: float
    avg_cpu_freq_ghz: float
    avg_imc_freq_ghz: float
    n_runs: int
    runs: tuple[RunResult, ...]
    #: seeds excluded from the average because their runs were
    #: quarantined by the pool (0 on the clean path).  ``n_runs`` counts
    #: the surviving seeds only, so coverage is ``n_runs / (n_runs +
    #: n_failed)``.
    n_failed: int = 0

    @classmethod
    def from_runs(
        cls,
        workload: str,
        config_name: str,
        runs: tuple[RunResult, ...],
        *,
        n_failed: int = 0,
    ) -> "AveragedResult":
        """Average seeded runs into one result (field-wise mean)."""
        n = len(runs)
        return cls(
            workload=workload,
            config_name=config_name,
            time_s=sum(r.time_s for r in runs) / n,
            dc_energy_j=sum(r.dc_energy_j for r in runs) / n,
            pck_energy_j=sum(r.pck_energy_j for r in runs) / n,
            avg_dc_power_w=sum(r.avg_dc_power_w for r in runs) / n,
            avg_pck_power_w=sum(r.avg_pck_power_w for r in runs) / n,
            avg_cpu_freq_ghz=sum(r.avg_cpu_freq_ghz for r in runs) / n,
            avg_imc_freq_ghz=sum(r.avg_imc_freq_ghz for r in runs) / n,
            n_runs=n,
            runs=runs,
            n_failed=n_failed,
        )


@dataclass(frozen=True)
class Comparison:
    """One policy configuration against the no-policy reference."""

    workload: str
    config_name: str
    reference: AveragedResult
    result: AveragedResult

    @property
    def time_penalty(self) -> float:
        """Fractional execution-time increase vs. the baseline."""
        return self.result.time_s / self.reference.time_s - 1.0

    @property
    def power_saving(self) -> float:
        """Fractional DC-power saving vs. the baseline."""
        return 1.0 - self.result.avg_dc_power_w / self.reference.avg_dc_power_w

    @property
    def energy_saving(self) -> float:
        """Fractional DC-energy saving vs. the baseline."""
        return 1.0 - self.result.dc_energy_j / self.reference.dc_energy_j

    @property
    def pck_power_saving(self) -> float:
        """Fractional package-power saving vs. the baseline."""
        return 1.0 - self.result.avg_pck_power_w / self.reference.avg_pck_power_w

    @property
    def efficiency_ratio(self) -> float:
        """Energy saving per unit of time penalty (the paper's 'ratio')."""
        pen = self.time_penalty
        if pen <= 0:
            return float("inf") if self.energy_saving > 0 else 0.0
        return self.energy_saving / pen

    @property
    def runs_requested_cpu(self) -> float:
        """CPU clock the policy *requested* (node 0, last decision).

        Differs from the measured average under AVX-512 licence
        throttling: a policy may request nominal while the silicon runs
        the licence clock — the distinction the AVX512-model ablation
        measures.
        """
        for run in self.result.runs:
            for decision in reversed(run.decisions):
                if decision.freqs is not None:
                    return decision.freqs.cpu_ghz
        return self.result.avg_cpu_freq_ghz


def standard_configs(
    *,
    cpu_policy_th: float = 0.05,
    unc_policy_th: float = 0.02,
    coefficients_path: str | None = None,
    regions: bool = False,
) -> dict[str, EarConfig | None]:
    """The paper's three standard configurations.

    ``coefficients_path`` makes the policy-bearing configurations
    project through a fitted coefficient table (see
    :func:`repro.ear.models.resolve_coefficients` for the resolution
    order); the default ``None`` keeps the analytic coefficients.
    ``regions=True`` adds the region-based variant ``me_eufs_regions``
    (policy ``min_energy_regions``; see docs/POLICIES.md) — opt-in so
    the paper's three-way tables keep their exact shape.
    """
    configs: dict[str, EarConfig | None] = {
        "none": None,
        "me": EarConfig(
            use_explicit_ufs=False,
            cpu_policy_th=cpu_policy_th,
            coefficients_path=coefficients_path,
        ),
        "me_eufs": EarConfig(
            cpu_policy_th=cpu_policy_th,
            unc_policy_th=unc_policy_th,
            coefficients_path=coefficients_path,
        ),
    }
    if regions:
        configs["me_eufs_regions"] = EarConfig(
            policy="min_energy_regions",
            cpu_policy_th=cpu_policy_th,
            unc_policy_th=unc_policy_th,
            coefficients_path=coefficients_path,
        )
    return configs


def clear_run_cache(*, disk: bool = False) -> None:
    """Forget cached runs in the default pool (memory layer; optionally disk)."""
    default_pool().clear(disk=disk)


def _pool_for(jobs: int | None) -> ExperimentPool:
    """Resolve an execution pool for an explicit ``jobs`` override.

    ``None`` (the common case) uses the process-default pool; an
    explicit worker count gets an ephemeral pool that *shares* the
    default pool's cache, so results stay visible either way.
    """
    pool = default_pool()
    if jobs is None or jobs == pool.jobs:
        return pool
    return ExperimentPool(jobs=jobs, cache=pool.cache)


def run_averaged(
    workload: Workload,
    config: EarConfig | None,
    *,
    config_name: str = "",
    seeds=DEFAULT_SEEDS,
    scale: float = 1.0,
    jobs: int | None = None,
    engine: str = "scalar",
) -> AveragedResult:
    """Run one configuration ``len(seeds)`` times and average.

    ``scale`` shrinks iteration counts (tests use 0.2-0.5 to stay fast;
    the benchmark harness runs at full length).  ``seeds`` may be any
    iterable (it is normalised to a tuple once, so generators work).
    ``jobs`` overrides the default pool's worker count for this call;
    ``engine`` selects the simulation inner loop (scalar/batched).
    """
    return _pool_for(jobs).run_averaged(
        workload,
        config,
        config_name=config_name,
        seeds=tuple(seeds),
        scale=scale,
        engine=engine,
    )


def compare(
    workload: Workload,
    configs: dict[str, EarConfig | None],
    *,
    seeds=DEFAULT_SEEDS,
    scale: float = 1.0,
    jobs: int | None = None,
    engine: str = "scalar",
) -> dict[str, Comparison]:
    """Evaluate several configurations against the ``none`` reference.

    All (config, seed) runs are submitted to the pool as one batch, so
    with ``jobs > 1`` the whole comparison fans out at once.
    """
    return _pool_for(jobs).compare(
        workload, configs, seeds=tuple(seeds), scale=scale, engine=engine
    )
