"""Experiment runner: averaged multi-run comparisons.

Mirrors the paper's methodology: "For all the experiments, three runs
have been executed, and we are using the average of all three.  For a
fair comparison, all the executions for each application have been done
using the same set of nodes" — here, the same node *configuration* and
matched seeds.

Results are cached in-process keyed by (workload, configuration, seeds,
scale) so one harness invocation that builds several tables does not
re-run shared baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ear.config import EarConfig
from ..sim.engine import run_workload
from ..sim.result import RunResult
from ..workloads.app import Workload

__all__ = [
    "AveragedResult",
    "Comparison",
    "run_averaged",
    "compare",
    "standard_configs",
    "clear_run_cache",
]

DEFAULT_SEEDS = (1, 2, 3)


@dataclass(frozen=True)
class AveragedResult:
    """Mean over the repeated runs of one configuration."""

    workload: str
    config_name: str
    time_s: float
    dc_energy_j: float
    pck_energy_j: float
    avg_dc_power_w: float
    avg_pck_power_w: float
    avg_cpu_freq_ghz: float
    avg_imc_freq_ghz: float
    n_runs: int
    runs: tuple[RunResult, ...]

    @classmethod
    def from_runs(
        cls, workload: str, config_name: str, runs: tuple[RunResult, ...]
    ) -> "AveragedResult":
        n = len(runs)
        return cls(
            workload=workload,
            config_name=config_name,
            time_s=sum(r.time_s for r in runs) / n,
            dc_energy_j=sum(r.dc_energy_j for r in runs) / n,
            pck_energy_j=sum(r.pck_energy_j for r in runs) / n,
            avg_dc_power_w=sum(r.avg_dc_power_w for r in runs) / n,
            avg_pck_power_w=sum(r.avg_pck_power_w for r in runs) / n,
            avg_cpu_freq_ghz=sum(r.avg_cpu_freq_ghz for r in runs) / n,
            avg_imc_freq_ghz=sum(r.avg_imc_freq_ghz for r in runs) / n,
            n_runs=n,
            runs=runs,
        )


@dataclass(frozen=True)
class Comparison:
    """One policy configuration against the no-policy reference."""

    workload: str
    config_name: str
    reference: AveragedResult
    result: AveragedResult

    @property
    def time_penalty(self) -> float:
        return self.result.time_s / self.reference.time_s - 1.0

    @property
    def power_saving(self) -> float:
        return 1.0 - self.result.avg_dc_power_w / self.reference.avg_dc_power_w

    @property
    def energy_saving(self) -> float:
        return 1.0 - self.result.dc_energy_j / self.reference.dc_energy_j

    @property
    def pck_power_saving(self) -> float:
        return 1.0 - self.result.avg_pck_power_w / self.reference.avg_pck_power_w

    @property
    def efficiency_ratio(self) -> float:
        """Energy saving per unit of time penalty (the paper's 'ratio')."""
        pen = self.time_penalty
        if pen <= 0:
            return float("inf") if self.energy_saving > 0 else 0.0
        return self.energy_saving / pen

    @property
    def runs_requested_cpu(self) -> float:
        """CPU clock the policy *requested* (node 0, last decision).

        Differs from the measured average under AVX-512 licence
        throttling: a policy may request nominal while the silicon runs
        the licence clock — the distinction the AVX512-model ablation
        measures.
        """
        for run in self.result.runs:
            for decision in reversed(run.decisions):
                if decision.freqs is not None:
                    return decision.freqs.cpu_ghz
        return self.result.avg_cpu_freq_ghz


def standard_configs(
    *, cpu_policy_th: float = 0.05, unc_policy_th: float = 0.02
) -> dict[str, EarConfig | None]:
    """The paper's three standard configurations."""
    return {
        "none": None,
        "me": EarConfig(use_explicit_ufs=False, cpu_policy_th=cpu_policy_th),
        "me_eufs": EarConfig(
            cpu_policy_th=cpu_policy_th, unc_policy_th=unc_policy_th
        ),
    }


_CACHE: dict[tuple, AveragedResult] = {}


def clear_run_cache() -> None:
    _CACHE.clear()


def _cache_key(workload: Workload, config: EarConfig | None, seeds, scale) -> tuple:
    cfg_key = config if config is None else tuple(sorted(vars(config).items()))
    return (workload.name, workload.n_nodes, cfg_key, tuple(seeds), scale)


def run_averaged(
    workload: Workload,
    config: EarConfig | None,
    *,
    config_name: str = "",
    seeds=DEFAULT_SEEDS,
    scale: float = 1.0,
) -> AveragedResult:
    """Run one configuration ``len(seeds)`` times and average.

    ``scale`` shrinks iteration counts (tests use 0.2-0.5 to stay fast;
    the benchmark harness runs at full length).
    """
    key = _cache_key(workload, config, seeds, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    wl = workload if scale == 1.0 else workload.scaled_iterations(scale)
    runs = tuple(run_workload(wl, ear_config=config, seed=s) for s in seeds)
    avg = AveragedResult.from_runs(workload.name, config_name, runs)
    _CACHE[key] = avg
    return avg


def compare(
    workload: Workload,
    configs: dict[str, EarConfig | None],
    *,
    seeds=DEFAULT_SEEDS,
    scale: float = 1.0,
) -> dict[str, Comparison]:
    """Evaluate several configurations against the ``none`` reference."""
    if "none" not in configs:
        configs = {"none": None, **configs}
    reference = run_averaged(
        workload, configs["none"], config_name="none", seeds=seeds, scale=scale
    )
    out: dict[str, Comparison] = {}
    for name, cfg in configs.items():
        if name == "none":
            continue
        result = run_averaged(
            workload, cfg, config_name=name, seeds=seeds, scale=scale
        )
        out[name] = Comparison(
            workload=workload.name,
            config_name=name,
            reference=reference,
            result=result,
        )
    return out
