"""Resilience experiment: energy policies on a hostile node.

The paper evaluates EAR on clean hardware; production nodes are not
clean.  This experiment sweeps the *intensity* of a reference fault
regime (all five channels of :class:`~repro.sim.faults.FaultPlan`
scaled together) and reports how the policy's energy savings and time
penalty degrade as sensors stall, counters corrupt, MSR writes fail and
thermal clamps bite.  The robustness claim being demonstrated: savings
shrink *gracefully* toward the no-policy baseline — the runtime never
crashes, and the watchdog keeps a blinded node at its safe defaults
instead of chasing garbage signatures.

Savings are computed against the clean no-policy reference (the same
reference the paper's tables use), so a point at intensity 0 reproduces
the standard comparison exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..ear.config import EarConfig
from ..sim.faults import FaultPlan, NodeHealth
from ..telemetry import ladder_event_counts
from ..workloads.app import Workload
from .parallel import RunRequest
from .runner import DEFAULT_SEEDS, _pool_for

__all__ = [
    "InfraResiliencePoint",
    "InfraResilienceSweep",
    "ResiliencePoint",
    "ResilienceSweep",
    "infra_resilience_sweep",
    "reference_fault_plan",
    "reference_infra_plan",
    "resilience_sweep",
]

#: Default intensity grid: clean, mild, the reference regime, and two
#: escalations well past anything a sane node produces.
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0, 2.0, 4.0)


def reference_fault_plan(*, seed: int = 0) -> FaultPlan:
    """The intensity-1.0 fault regime: every channel active at rates
    that fire several times over a multi-minute job."""
    return FaultPlan(
        seed=seed,
        meter_stall_rate=0.04,
        meter_dropout_rate=0.02,
        counter_corruption_rate=0.04,
        msr_failure_rate=0.05,
        rapl_wrap_rate=0.02,
        throttle_rate=0.01,
    )


@dataclass(frozen=True)
class ResiliencePoint:
    """One fault intensity: paper metrics + aggregated health."""

    intensity: float
    time_penalty: float
    power_saving: float
    energy_saving: float
    #: node healths summed over nodes and seeds at this intensity.
    health: NodeHealth
    n_runs: int
    #: degradation-ladder event tallies ("subsystem/kind", count) summed
    #: over the runs at this intensity; empty unless the sweep executed
    #: with ``telemetry=True``.
    ladder_events: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class ResilienceSweep:
    """A full fault-intensity sweep of one workload under one config."""

    workload: str
    config_name: str
    points: tuple[ResiliencePoint, ...]


def resilience_sweep(
    workload: Workload,
    config: EarConfig | None = None,
    *,
    config_name: str = "me_eufs",
    intensities=DEFAULT_INTENSITIES,
    seeds=DEFAULT_SEEDS,
    scale: float = 1.0,
    jobs: int | None = None,
    base_plan: FaultPlan | None = None,
    telemetry: bool = False,
) -> ResilienceSweep:
    """Sweep fault intensity; return savings vs the clean reference.

    All (intensity, seed) runs plus the clean baselines are submitted
    to the pool as one batch, so the sweep parallelises and caches like
    every other experiment.  ``base_plan`` overrides the reference
    regime that the intensities scale.  ``telemetry=True`` records the
    structured event stream in every faulted run and reports per-point
    degradation-ladder tallies (``ResiliencePoint.ladder_events``) —
    each hardening reaction counted from the events themselves rather
    than inferred from aggregate health numbers.
    """
    if config is None:
        config = EarConfig()
    seeds = tuple(seeds)
    intensities = tuple(intensities)
    base = base_plan if base_plan is not None else reference_fault_plan()

    def plan_at(intensity: float) -> FaultPlan | None:
        if intensity <= 0:
            return None
        return base.scaled(intensity)

    reference = [
        RunRequest(workload=workload, ear_config=None, seed=s, scale=scale)
        for s in seeds
    ]
    per_intensity = {
        intensity: [
            RunRequest(
                workload=workload,
                ear_config=config,
                seed=s,
                scale=scale,
                fault_plan=plan_at(intensity),
                telemetry=telemetry,
            )
            for s in seeds
        ]
        for intensity in intensities
    }
    pool = _pool_for(jobs)
    # one flat batch: baselines + every intensity fan out together
    pool.run_many(reference + [r for reqs in per_intensity.values() for r in reqs])

    ref_runs = pool.run_many(reference)
    ref_time = sum(r.time_s for r in ref_runs) / len(ref_runs)
    ref_energy = sum(r.dc_energy_j for r in ref_runs) / len(ref_runs)
    ref_power = sum(r.avg_dc_power_w for r in ref_runs) / len(ref_runs)

    points = []
    for intensity in intensities:
        runs = pool.run_many(per_intensity[intensity])
        time_s = sum(r.time_s for r in runs) / len(runs)
        energy = sum(r.dc_energy_j for r in runs) / len(runs)
        power = sum(r.avg_dc_power_w for r in runs) / len(runs)
        ladder: dict[str, int] = {}
        for r in runs:
            for name, count in ladder_event_counts(r):
                ladder[name] = ladder.get(name, 0) + count
        points.append(
            ResiliencePoint(
                intensity=intensity,
                time_penalty=time_s / ref_time - 1.0,
                power_saving=1.0 - power / ref_power,
                energy_saving=1.0 - energy / ref_energy,
                health=NodeHealth.merge([r.health for r in runs]),
                n_runs=len(runs),
                ladder_events=tuple(sorted(ladder.items())),
            )
        )
    return ResilienceSweep(
        workload=workload.name, config_name=config_name, points=tuple(points)
    )


# -- control-plane (infrastructure) resilience --------------------------------


def reference_infra_plan(*, seed: int = 0) -> FaultPlan:
    """The intensity-1.0 *infrastructure* regime.

    Layers the control-plane channels — node crashes mid-job, EARDBD
    restarts — on top of the hardware reference regime, so one
    intensity knob scales both domains together (the production
    situation: a cluster losing nodes is also a cluster with flaky
    meters).
    """
    return replace(
        reference_fault_plan(seed=seed),
        node_crash_rate=0.08,
        node_reboot_s=90.0,
        eardbd_restart_rate=0.2,
    )


@dataclass(frozen=True)
class InfraResiliencePoint:
    """One infra fault intensity: completion, requeue and retry tallies."""

    intensity: float
    n_jobs: int
    n_completed: int
    n_failed: int
    #: crash-killed attempts the scheduler requeued.
    n_requeues: int
    #: node-crash events injected.
    n_node_failures: int
    #: EARDBD daemon restarts survived (buffered reports replayed).
    eardbd_restarts: int
    #: experiment-pool retries observed while this point executed.
    pool_retries: int
    makespan_s: float
    total_energy_j: float
    #: True when the EARDBD conservation law held exactly at the end.
    eardbd_reconciled: bool


@dataclass(frozen=True)
class InfraResilienceSweep:
    """A full infra-intensity sweep of one cluster campaign."""

    policy: str
    n_nodes: int
    n_jobs: int
    points: tuple[InfraResiliencePoint, ...]


def infra_resilience_sweep(
    *,
    intensities=DEFAULT_INTENSITIES,
    n_jobs: int = 10,
    n_nodes: int = 6,
    seed: int = 0,
    scale: float = 0.3,
    config: EarConfig | None = None,
    jobs: int | None = None,
    base_plan: FaultPlan | None = None,
) -> InfraResilienceSweep:
    """Sweep the control-plane fault channels over a cluster campaign.

    Replays the same seeded trace at each intensity of the reference
    infra regime (:func:`reference_infra_plan`, hardware channels
    included) and tallies what the resilient control plane did: jobs
    completed vs. terminally failed, crash requeues, EARDBD restarts
    survived, pool retries — plus makespan/energy so the cost of the
    churn is visible.  Intensity 0 is the clean campaign.
    """
    from ..cluster.scheduler import ClusterConfig, ClusterSimulation
    from ..cluster.traces import TraceConfig, generate_trace

    trace = generate_trace(TraceConfig(n_jobs=n_jobs, seed=seed, scale=scale))
    base = base_plan if base_plan is not None else reference_infra_plan()
    pool = _pool_for(jobs)
    points = []
    for intensity in tuple(intensities):
        plan = base.scaled(intensity) if intensity > 0 else None
        cluster = ClusterConfig(
            n_nodes=n_nodes, ear_config=config, fault_plan=plan
        )
        retries_before = pool.stats.retries
        sim = ClusterSimulation(trace, cluster, pool=pool)
        report = sim.run()
        points.append(
            InfraResiliencePoint(
                intensity=intensity,
                n_jobs=n_jobs,
                n_completed=len(report.jobs),
                n_failed=len(report.failures),
                n_requeues=report.n_requeues,
                n_node_failures=report.n_node_failures,
                eardbd_restarts=report.eardbd.restarts,
                pool_retries=pool.stats.retries - retries_before,
                makespan_s=report.makespan_s,
                total_energy_j=report.total_energy_j,
                eardbd_reconciled=report.eardbd.reconciles_with(
                    sim.accounting, pending=sim.eardbd.pending
                ),
            )
        )
    return InfraResilienceSweep(
        policy=config.policy if config is not None else "none",
        n_nodes=n_nodes,
        n_jobs=n_jobs,
        points=tuple(points),
    )
