"""The motivation study: fixed-uncore sweeps (the paper's Figure 1).

Section II of the paper runs BT-MZ and LU with the CPU frequency the
policy would select and the uncore (a) managed by hardware — the
reference — and (b) pinned to every value from 2.4 GHz down to 1.2 GHz
in 0.1 GHz steps, reporting time penalty, DC power saving, energy
saving and memory-bandwidth penalty against the reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.units import ratio_to_ghz
from ..workloads.app import Workload
from ..workloads.kernels import bt_mz_c_mpi, lu_d_mpi
from .parallel import RunRequest

__all__ = ["SweepPoint", "UncoreSweep", "uncore_sweep", "figure1"]


@dataclass(frozen=True)
class SweepPoint:
    """One fixed-uncore configuration vs. the HW-UFS reference."""

    uncore_ghz: float
    time_penalty: float
    power_saving: float
    energy_saving: float
    gbs_penalty: float
    avg_imc_ghz: float


@dataclass(frozen=True)
class UncoreSweep:
    """Full sweep result for one kernel."""

    workload: str
    cpu_ghz: float
    hw_reference_imc_ghz: float
    points: tuple[SweepPoint, ...]


def uncore_sweep(
    workload: Workload,
    *,
    cpu_ghz: float,
    seeds=(1, 2, 3),
    scale: float = 1.0,
    min_ratio: int = 12,
    max_ratio: int = 24,
    jobs: int | None = None,
    engine: str = "scalar",
) -> UncoreSweep:
    """Run the fixed-uncore sweep for one workload.

    The CPU clock is pinned at the policy-selected frequency for every
    run (including the reference), isolating the uncore's effect — the
    paper's experimental design.  The reference and every pinned point
    are submitted to the execution pool as one batch, so a parallel
    pool fans the whole sweep out at once; averaging happens per point
    in seed order, keeping the numbers identical to a serial sweep.
    """
    from .runner import _pool_for

    seeds = tuple(seeds)
    pool = _pool_for(jobs)
    uncore_ghzs = [ratio_to_ghz(r) for r in range(max_ratio, min_ratio - 1, -1)]
    requests = [
        RunRequest(
            workload=workload,
            ear_config=None,
            seed=s,
            scale=scale,
            pin_cpu_ghz=cpu_ghz,
            pin_uncore_ghz=f_unc,
            engine=engine,
        )
        for f_unc in [None, *uncore_ghzs]
        for s in seeds
    ]
    results = pool.run_many(requests)
    n = len(seeds)
    groups = [results[i : i + n] for i in range(0, len(results), n)]

    def averaged(runs):
        return (
            sum(r.time_s for r in runs) / n,
            sum(r.avg_dc_power_w for r in runs) / n,
            sum(r.dc_energy_j for r in runs) / n,
            sum(r.gbs for r in runs) / n,
            sum(r.avg_imc_freq_ghz for r in runs) / n,
        )

    ref_t, ref_p, ref_e, ref_gbs, ref_imc = averaged(groups[0])
    points = []
    for f_unc, group in zip(uncore_ghzs, groups[1:]):
        t, p, e, gbs, imc = averaged(group)
        points.append(
            SweepPoint(
                uncore_ghz=f_unc,
                time_penalty=t / ref_t - 1.0,
                power_saving=1.0 - p / ref_p,
                energy_saving=1.0 - e / ref_e,
                gbs_penalty=1.0 - gbs / ref_gbs,
                avg_imc_ghz=imc,
            )
        )
    return UncoreSweep(
        workload=workload.name,
        cpu_ghz=cpu_ghz,
        hw_reference_imc_ghz=ref_imc,
        points=tuple(points),
    )


def figure1(
    *, seeds=(1, 2, 3), scale: float = 1.0, jobs: int | None = None
) -> dict[str, UncoreSweep]:
    """Figure 1(a): BT-MZ and 1(b): LU fixed-uncore sweeps.

    CPU frequencies are the ones the policy chose in the Table I runs:
    nominal for BT-MZ, one P-state down for LU.
    """
    return {
        "BT-MZ": uncore_sweep(
            bt_mz_c_mpi(), cpu_ghz=2.4, seeds=seeds, scale=scale, jobs=jobs
        ),
        "LU": uncore_sweep(
            lu_d_mpi(), cpu_ghz=2.3, seeds=seeds, scale=scale, jobs=jobs
        ),
    }
