"""Experiment harness: regenerate every table and figure of the paper."""

from .motivation import SweepPoint, UncoreSweep, figure1, uncore_sweep
from .parallel import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    ExperimentPool,
    RunCache,
    RunRequest,
    configure_defaults,
    default_pool,
)
from .resilience import (
    ResiliencePoint,
    ResilienceSweep,
    reference_fault_plan,
    resilience_sweep,
)
from .runner import (
    AveragedResult,
    Comparison,
    clear_run_cache,
    compare,
    run_averaged,
    standard_configs,
)
from .tables import (
    app_thresholds,
    table1_kernel_metrics,
    table2_kernel_characteristics,
    table3_kernel_savings,
    table4_kernel_frequencies,
    table5_application_characteristics,
    table6_application_frequencies,
    table7_dc_vs_pck,
)
from .figures import (
    figure3_bqcd,
    figure4_btmz,
    figure5_gromacs1,
    figure6_gromacs2,
    figure7_hpcg_pop,
    figure8_dumses_afid,
)
from . import paper_data
from .report import format_figure_series, format_table, ghz, pct, side_by_side
from .export import rows_to_csv, series_to_csv, write_csv
from .trace import descent_summary, render_timeline, settled_imc_max_ghz

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ExperimentPool",
    "RunCache",
    "RunRequest",
    "configure_defaults",
    "default_pool",
    "AveragedResult",
    "Comparison",
    "compare",
    "run_averaged",
    "standard_configs",
    "clear_run_cache",
    "ResiliencePoint",
    "ResilienceSweep",
    "reference_fault_plan",
    "resilience_sweep",
    "app_thresholds",
    "SweepPoint",
    "UncoreSweep",
    "figure1",
    "uncore_sweep",
    "table1_kernel_metrics",
    "table2_kernel_characteristics",
    "table3_kernel_savings",
    "table4_kernel_frequencies",
    "table5_application_characteristics",
    "table6_application_frequencies",
    "table7_dc_vs_pck",
    "figure3_bqcd",
    "figure4_btmz",
    "figure5_gromacs1",
    "figure6_gromacs2",
    "figure7_hpcg_pop",
    "figure8_dumses_afid",
    "paper_data",
    "format_table",
    "format_figure_series",
    "pct",
    "ghz",
    "side_by_side",
    "render_timeline",
    "descent_summary",
    "settled_imc_max_ghz",
    "rows_to_csv",
    "series_to_csv",
    "write_csv",
]
