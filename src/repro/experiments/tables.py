"""Builders for every table in the paper's evaluation section.

Each builder returns plain data structures (lists of row dicts) so the
benchmark harness, the report renderer and the tests all consume the
same artefacts.  ``scale`` shrinks iteration counts for fast runs; the
benches run at 1.0.
"""

from __future__ import annotations

from ..ear.config import EarConfig
from ..workloads.applications import mpi_applications
from ..workloads.kernels import bt_mz_c_mpi, lu_d_mpi, single_node_kernels
from .parallel import RunRequest
from .runner import (
    DEFAULT_SEEDS,
    _pool_for,
    compare,
    run_averaged,
    standard_configs,
)

__all__ = [
    "table1_kernel_metrics",
    "table2_kernel_characteristics",
    "table3_kernel_savings",
    "table4_kernel_frequencies",
    "table5_application_characteristics",
    "table6_application_frequencies",
    "table7_dc_vs_pck",
    "app_thresholds",
]


def app_thresholds(name: str) -> float:
    """Per-application cpu_policy_th used in the paper's section VI-B.

    "All the applications have been executed with a cpu_policy_th of 5 %
    except BQCD, where a cpu_policy_th of 3 % was used."
    """
    return 0.03 if name == "BQCD" else 0.05


def _prefetch(pairs, *, seeds, scale, jobs) -> None:
    """Warm the run cache for every (workload, config) pair in one batch.

    The table builders below iterate workloads serially; submitting all
    their runs up front lets a ``jobs > 1`` pool fan the *whole table*
    out instead of one workload at a time.  Serial pools skip this (the
    per-call path would execute the identical runs anyway).
    """
    pool = _pool_for(jobs)
    if pool.jobs <= 1:
        return
    pool.run_many(
        [
            RunRequest(workload=wl, ear_config=cfg, seed=s, scale=scale)
            for wl, cfg in pairs
            for s in seeds
        ]
    )


def table1_kernel_metrics(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table I: BT-MZ.C / LU.D under min_energy with hardware UFS."""
    seeds = tuple(seeds)
    kernels = (bt_mz_c_mpi(), lu_d_mpi())
    _prefetch(
        [(wl, EarConfig(use_explicit_ufs=False)) for wl in kernels],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    rows = []
    for wl in kernels:
        me = run_averaged(
            wl,
            EarConfig(use_explicit_ufs=False),
            config_name="me",
            seeds=seeds,
            scale=scale,
            jobs=jobs,
        )
        run = me.runs[0]
        rows.append(
            {
                "kernel": wl.name,
                "cpi": run.cpi,
                "gbs": run.gbs,
                "cpu_ghz": me.avg_cpu_freq_ghz,
                "imc_ghz": me.avg_imc_freq_ghz,
            }
        )
    return rows


def table2_kernel_characteristics(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table II: kernels at nominal frequency — time, CPI, GB/s, power."""
    seeds = tuple(seeds)
    kernels = list(single_node_kernels())
    _prefetch([(wl, None) for wl in kernels], seeds=seeds, scale=scale, jobs=jobs)
    rows = []
    for wl in kernels:
        base = run_averaged(
            wl, None, config_name="none", seeds=seeds, scale=scale, jobs=jobs
        )
        run = base.runs[0]
        rows.append(
            {
                "kernel": wl.name,
                "time_s": base.time_s,
                "cpi": run.cpi,
                "gbs": run.gbs,
                "dc_power_w": base.avg_dc_power_w,
            }
        )
    return rows


def table3_kernel_savings(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table III: kernel time penalty / power saving / energy saving."""
    seeds = tuple(seeds)
    kernels = list(single_node_kernels())
    _prefetch(
        [(wl, cfg) for wl in kernels for cfg in standard_configs().values()],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    rows = []
    for wl in kernels:
        cmp_ = compare(wl, standard_configs(), seeds=seeds, scale=scale, jobs=jobs)
        row = {"kernel": wl.name}
        for cfg in ("me", "me_eufs"):
            c = cmp_[cfg]
            row[cfg] = {
                "time_penalty": c.time_penalty,
                "power_saving": c.power_saving,
                "energy_saving": c.energy_saving,
            }
        rows.append(row)
    return rows


def table4_kernel_frequencies(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table IV: kernel average CPU and IMC frequencies per config."""
    seeds = tuple(seeds)
    kernels = list(single_node_kernels())
    _prefetch(
        [(wl, cfg) for wl in kernels for cfg in standard_configs().values()],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    rows = []
    for wl in kernels:
        row = {"kernel": wl.name}
        for name, cfg in standard_configs().items():
            avg = run_averaged(
                wl, cfg, config_name=name, seeds=seeds, scale=scale, jobs=jobs
            )
            row[name] = {"cpu": avg.avg_cpu_freq_ghz, "imc": avg.avg_imc_freq_ghz}
        rows.append(row)
    return rows


def table5_application_characteristics(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table V: application characteristics at nominal frequency."""
    seeds = tuple(seeds)
    apps = list(mpi_applications())
    _prefetch([(wl, None) for wl in apps], seeds=seeds, scale=scale, jobs=jobs)
    rows = []
    for wl in apps:
        base = run_averaged(
            wl, None, config_name="none", seeds=seeds, scale=scale, jobs=jobs
        )
        run = base.runs[0]
        rows.append(
            {
                "application": wl.name,
                "time_s": base.time_s,
                "cpi": run.cpi,
                "gbs": run.gbs,
                "dc_power_w": base.avg_dc_power_w,
            }
        )
    return rows


def table6_application_frequencies(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table VI: application average CPU and IMC frequencies per config."""
    seeds = tuple(seeds)
    apps = list(mpi_applications())
    _prefetch(
        [
            (wl, cfg)
            for wl in apps
            for cfg in standard_configs(cpu_policy_th=app_thresholds(wl.name)).values()
        ],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    rows = []
    for wl in apps:
        row = {"application": wl.name}
        th = app_thresholds(wl.name)
        for name, cfg in standard_configs(cpu_policy_th=th).items():
            avg = run_averaged(
                wl, cfg, config_name=name, seeds=seeds, scale=scale, jobs=jobs
            )
            row[name] = {"cpu": avg.avg_cpu_freq_ghz, "imc": avg.avg_imc_freq_ghz}
        rows.append(row)
    return rows


def table7_dc_vs_pck(
    *, seeds=DEFAULT_SEEDS, scale: float = 1.0, jobs: int | None = None
) -> list[dict]:
    """Table VII: DC-node vs RAPL-package power savings under ME+eU.

    The paper's point: the package is a non-constant fraction of node
    power, so judging policies on RAPL PCK savings overstates them.
    """
    seeds = tuple(seeds)
    apps = [wl for wl in mpi_applications() if wl.name != "GROMACS(I)"]
    _prefetch(
        [
            (wl, cfg)
            for wl in apps
            for cfg in standard_configs(cpu_policy_th=app_thresholds(wl.name)).values()
        ],
        seeds=seeds,
        scale=scale,
        jobs=jobs,
    )
    rows = []
    for wl in apps:
        # the paper's Table VII lists GROMACS(II) only
        th = app_thresholds(wl.name)
        cmp_ = compare(
            wl, standard_configs(cpu_policy_th=th), seeds=seeds, scale=scale, jobs=jobs
        )
        c = cmp_["me_eufs"]
        rows.append(
            {
                "application": wl.name,
                "dc_saving": c.power_saving,
                "pck_saving": c.pck_power_saving,
            }
        )
    return rows
