"""Failure model of the execution tier: retries, timeouts, poison jobs.

The campaigns this repo is growing toward (P-states × uncore × seeds ×
kernels of full runs, ROADMAP's million-run north star) only work if
the execution tier survives its own infrastructure: a worker process
killed by the OOM killer, a wedged worker that never returns, a request
whose execution always dies.  This module is the *vocabulary* of that
failure model — the policies and records — while the machinery that
applies them lives in :class:`~repro.experiments.parallel.ExperimentPool`:

:class:`RetryPolicy`
    How hard the pool fights for each request: bounded attempts, a
    per-job wall-clock timeout, and exponential backoff whose jitter is
    *seeded* (derived from the request key, which contains the run
    seed), so the retry schedule of a given run is reproducible — chaos
    runs are experiments too.

:class:`AttemptRecord` / :class:`FailedRun`
    The structured result of a request the pool gave up on.  A batch
    never raises for a poison job; it returns a :class:`FailedRun`
    carrying the full attempt history and the final exception chain, so
    averaging/fitting callers can exclude the failed seeds and report
    coverage instead of losing hours of completed work.

Failure kinds
-------------

``task_error``
    The simulation itself raised.  Deterministic by construction (same
    seed ⇒ same exception), so these are *not* retried unless
    :attr:`RetryPolicy.retry_task_errors` is set; they quarantine on
    the first attempt by default.

``worker_crash``
    The worker process died (``BrokenProcessPool``): SIGKILL, OOM,
    segfault.  Every request in flight on the broken pool is charged
    one crash attempt (the pool cannot know which request was on the
    dead worker) and resubmitted to a fresh pool.

``timeout``
    The request exceeded :attr:`RetryPolicy.timeout_s` of wall clock.
    A running worker cannot be cancelled cooperatively, so the pool is
    killed and respawned; only the overdue request is charged the
    attempt — innocent bystanders are resubmitted free of charge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import ExperimentError

__all__ = [
    "AttemptRecord",
    "FailedRun",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/timeout/backoff behaviour of one experiment pool.

    The defaults are conservative: three attempts for infrastructure
    failures, no per-job timeout (simulated runs are usually seconds),
    task errors quarantined immediately.  The backoff schedule is a
    pure function of ``(policy seed, request key, attempt)`` — no wall
    clock, no shared RNG — so two executions of the same run produce
    identical retry schedules.
    """

    #: total attempts per request before it is quarantined.
    max_attempts: int = 3
    #: also burn retry attempts on exceptions raised *inside* the
    #: simulation.  Off by default: the simulation is deterministic, so
    #: a task error fails identically on every retry.
    retry_task_errors: bool = False
    #: per-job wall-clock limit in seconds (None = unlimited).  Only
    #: enforceable when requests execute in worker processes — the
    #: in-process serial path cannot interrupt itself.
    timeout_s: float | None = None
    #: first retry delay; attempt ``n`` waits ``base * factor**(n-1)``.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    #: fractional jitter: the delay is scaled by a deterministic factor
    #: in ``[1 - jitter, 1 + jitter)`` derived from the request key.
    jitter: float = 0.25
    #: salt for the jitter derivation (lets two pools retry the same
    #: keys on decorrelated schedules).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ExperimentError("timeout_s must be positive (or None)")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ExperimentError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ExperimentError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ExperimentError("jitter must be within [0, 1]")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before retry number ``attempt`` (the first retry is 1).

        Exponential in the attempt number, capped at
        :attr:`backoff_max_s`, jittered deterministically from the
        request key — so a batch of failed requests does not retry in
        lockstep, yet the same run always retries on the same schedule.
        """
        if attempt < 1:
            raise ExperimentError("backoff attempts count from 1")
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if base <= 0.0 or self.jitter <= 0.0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def attempts_for(self, kind: str) -> int:
        """Attempt budget for a failure kind (see module docstring)."""
        if kind == "task_error" and not self.retry_task_errors:
            return 1
        return self.max_attempts


#: The pool default: bounded infrastructure retries, no timeout.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt at executing a request."""

    #: 1-based attempt number.
    attempt: int
    #: ``task_error`` | ``worker_crash`` | ``timeout``.
    kind: str
    #: ``repr`` of the exception (empty for timeouts).
    error: str = ""
    #: backoff that was scheduled *after* this attempt (0 for the last).
    backoff_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-friendly view (journal/telemetry payloads)."""
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "error": self.error,
            "backoff_s": self.backoff_s,
        }


@dataclass(frozen=True)
class FailedRun:
    """A request the pool quarantined instead of raising.

    Takes the position of a :class:`~repro.sim.result.RunResult` in a
    batch's result tuple.  Callers that reduce over batches filter with
    ``isinstance(r, FailedRun)`` (or the :attr:`ok` flag) and report
    coverage; the attempt history and exception chain ride along for
    diagnosis and for the campaign journal.
    """

    key: str
    workload: str
    seed: int
    attempts: tuple[AttemptRecord, ...]

    ok = False

    @property
    def error_kind(self) -> str:
        """Failure kind of the final attempt."""
        return self.attempts[-1].kind if self.attempts else "unknown"

    @property
    def error(self) -> str:
        """Exception repr of the final attempt (empty for timeouts)."""
        return self.attempts[-1].error if self.attempts else ""

    @property
    def n_attempts(self) -> int:
        """How many times the pool tried before giving up."""
        return len(self.attempts)

    def describe(self) -> str:
        """One-line human summary for warnings and CLI output."""
        detail = self.error or self.error_kind
        return (
            f"{self.workload} seed {self.seed}: quarantined after "
            f"{self.n_attempts} attempt(s) ({detail})"
        )
