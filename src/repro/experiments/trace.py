"""Run-trace analysis: frequency timelines and descent summaries.

Turns a :class:`~repro.sim.result.RunResult` recorded with
``record_trace=True`` into human-readable artefacts: an ASCII timeline
of the CPU/uncore frequencies (the shape of the figure-2 state machine
in action) and a per-decision summary that pairs each policy step with
the signature that triggered it.
"""

from __future__ import annotations

from ..ear.policies.api import PolicyState
from ..sim.result import RunResult

__all__ = ["render_timeline", "descent_summary"]

_BARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], lo: float, hi: float) -> str:
    if hi <= lo:
        return "█" * len(values)
    out = []
    for v in values:
        idx = int(round((v - lo) / (hi - lo) * (len(_BARS) - 1)))
        out.append(_BARS[max(0, min(idx, len(_BARS) - 1))])
    return "".join(out)


def render_timeline(result: RunResult, *, width: int = 72) -> str:
    """ASCII timeline of node-0 CPU target and uncore frequency.

    Requires the run to have been executed with ``record_trace=True``;
    raises :class:`ValueError` otherwise (an empty chart would silently
    mislead).
    """
    if not result.freq_trace:
        raise ValueError(
            "run has no frequency trace; pass record_trace=True to the engine"
        )
    samples = list(result.freq_trace)
    # resample to the requested width by picking evenly spaced samples
    if len(samples) > width:
        step = len(samples) / width
        samples = [samples[int(i * step)] for i in range(width)]
    cpu = [s.cpu_target_ghz for s in samples]
    imc = [s.imc_freq_ghz for s in samples]
    lo, hi = 1.0, 2.6
    lines = [
        f"{result.workload}: frequency timeline over {result.time_s:.0f} s "
        f"(policy: {result.policy})",
        f"  cpu [{min(cpu):.1f}-{max(cpu):.1f} GHz] {_sparkline(cpu, lo, hi)}",
        f"  imc [{min(imc):.1f}-{max(imc):.1f} GHz] {_sparkline(imc, lo, hi)}",
    ]
    return "\n".join(lines)


def descent_summary(result: RunResult) -> list[dict]:
    """One row per policy decision on node 0.

    Pairs each step of the state machine with the observable that drove
    it — the raw material of the paper's figure-2 narrative.
    """
    rows = []
    for d in result.decisions:
        rows.append(
            {
                "at_s": d.at_s,
                "earl_state": d.earl_state.name,
                "policy_state": d.policy_state.name if d.policy_state else "",
                "cpu_ghz": d.freqs.cpu_ghz if d.freqs else None,
                "imc_max_ghz": d.freqs.imc_max_ghz if d.freqs else None,
                "cpi": d.signature.cpi,
                "gbs": d.signature.gbs,
                "dc_power_w": d.signature.dc_power_w,
            }
        )
    return rows


def settled_imc_max_ghz(result: RunResult) -> float | None:
    """The uncore ceiling after the last READY decision, if any."""
    for d in reversed(result.decisions):
        if d.policy_state is PolicyState.READY and d.freqs is not None:
            return d.freqs.imc_max_ghz
    return None
