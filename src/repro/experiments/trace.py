"""Run-trace analysis: frequency timelines and descent summaries.

Turns a :class:`~repro.sim.result.RunResult` into human-readable
artefacts: an ASCII timeline of the CPU/uncore frequencies (the shape
of the figure-2 state machine in action) and a per-decision summary
that pairs each policy step with the signature that triggered it.

Node 0 renders from the engine's ``record_trace=True`` frequency trace
or from telemetry; other nodes require the run to have been executed
with ``telemetry=True``, which records per-node ``engine/freq_sample``
events and per-node EARL decisions.

Sparkline axes are derived from the run's own hardware description
(the P-state table and the silicon uncore range carried on
:class:`RunResult`), never hardcoded: the old fixed 1.0-2.6 GHz axis
matched the Gold 6148 CPU range only by coincidence and was wrong for
its IMC (1.2-2.4 GHz — the bottom bar row could never be reached and
the top fifth was dead space), and silently mis-scaled any run on a
different P-state table.
"""

from __future__ import annotations

from ..ear.policies.api import PolicyState
from ..sim.result import FrequencySample, RunResult

__all__ = ["render_timeline", "descent_summary", "settled_imc_max_ghz"]

_BARS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], lo: float, hi: float) -> str:
    if hi <= lo:
        return "█" * len(values)
    out = []
    for v in values:
        idx = int(round((v - lo) / (hi - lo) * (len(_BARS) - 1)))
        out.append(_BARS[max(0, min(idx, len(_BARS) - 1))])
    return "".join(out)


def _check_node(result: RunResult, node: int) -> None:
    if not 0 <= node < result.n_nodes:
        raise ValueError(f"node {node} out of range for a {result.n_nodes}-node run")


def _node_samples(result: RunResult, node: int) -> list[FrequencySample]:
    """Frequency samples for one node: the engine trace (node 0) or the
    per-node telemetry stream."""
    if node == 0 and result.freq_trace:
        return list(result.freq_trace)
    if result.has_telemetry:
        samples = []
        for e in result.events:
            if e.node == node and e.subsystem == "engine" and e.kind == "freq_sample":
                p = e.payload_dict
                samples.append(
                    FrequencySample(
                        at_s=e.time_s,
                        cpu_target_ghz=float(p["cpu_target_ghz"]),
                        imc_freq_ghz=float(p["imc_freq_ghz"]),
                    )
                )
        if samples:
            return samples
    raise ValueError(
        f"run has no frequency samples for node {node}; pass record_trace=True "
        "(node 0) or telemetry=True (any node) to the engine"
    )


def _axis(
    range_ghz: tuple[float, float] | None, values: list[float]
) -> tuple[float, float]:
    """Sparkline axis: the hardware range when the run recorded it,
    otherwise the data extent (old results, hand-built fixtures)."""
    if range_ghz is not None:
        return range_ghz
    return min(values), max(values)


def render_timeline(result: RunResult, *, width: int = 72, node: int = 0) -> str:
    """ASCII timeline of one node's CPU target and uncore frequency.

    ``node`` selects the node (default 0) and is validated against the
    run's size; the rendered header names it, so a single-node view of
    a multi-node run can no longer masquerade as the whole job.
    Raises :class:`ValueError` when the run carries no samples for that
    node (an empty chart would silently mislead).
    """
    _check_node(result, node)
    samples = _node_samples(result, node)
    # resample to the requested width by picking evenly spaced samples
    if len(samples) > width:
        step = len(samples) / width
        samples = [samples[int(i * step)] for i in range(width)]
    cpu = [s.cpu_target_ghz for s in samples]
    imc = [s.imc_freq_ghz for s in samples]
    cpu_lo, cpu_hi = _axis(result.cpu_freq_range_ghz, cpu)
    imc_lo, imc_hi = _axis(result.imc_freq_range_ghz, imc)
    lines = [
        f"{result.workload}: node {node} frequency timeline over "
        f"{result.time_s:.0f} s (policy: {result.policy})",
        f"  cpu [{min(cpu):.1f}-{max(cpu):.1f} GHz, axis {cpu_lo:.1f}-{cpu_hi:.1f}] "
        f"{_sparkline(cpu, cpu_lo, cpu_hi)}",
        f"  imc [{min(imc):.1f}-{max(imc):.1f} GHz, axis {imc_lo:.1f}-{imc_hi:.1f}] "
        f"{_sparkline(imc, imc_lo, imc_hi)}",
    ]
    return "\n".join(lines)


def descent_summary(result: RunResult, *, node: int = 0) -> list[dict]:
    """One row per policy decision on the selected node.

    Pairs each step of the state machine with the observable that drove
    it — the raw material of the paper's figure-2 narrative.  Node 0
    reads the exact :class:`PolicyDecision` trace; other nodes rebuild
    the rows from their telemetry ``earl/decision`` events (available
    when the run executed with ``telemetry=True``).
    """
    _check_node(result, node)
    rows = []
    if node == 0 and result.decisions:
        for d in result.decisions:
            rows.append(
                {
                    "node": node,
                    "at_s": d.at_s,
                    "earl_state": d.earl_state.name,
                    "policy_state": d.policy_state.name if d.policy_state else "",
                    "cpu_ghz": d.freqs.cpu_ghz if d.freqs else None,
                    "imc_max_ghz": d.freqs.imc_max_ghz if d.freqs else None,
                    "cpi": d.signature.cpi,
                    "gbs": d.signature.gbs,
                    "dc_power_w": d.signature.dc_power_w,
                }
            )
        return rows
    if not result.has_telemetry:
        if node == 0:
            return rows  # genuinely no decisions (no-policy run)
        raise ValueError(
            f"run carries no decision trace for node {node}; execute it "
            "with telemetry=True"
        )
    for e in result.events:
        if e.node != node or e.subsystem != "earl" or e.kind != "decision":
            continue
        p = e.payload_dict
        rows.append(
            {
                "node": node,
                "at_s": e.time_s,
                "earl_state": p.get("earl_state"),
                "policy_state": p.get("policy_state") or "",
                "cpu_ghz": p.get("cpu_ghz"),
                "imc_max_ghz": p.get("imc_max_ghz"),
                "cpi": p.get("cpi"),
                "gbs": p.get("gbs"),
                "dc_power_w": p.get("dc_power_w"),
            }
        )
    return rows


def settled_imc_max_ghz(result: RunResult) -> float | None:
    """The uncore ceiling after the last READY decision, if any."""
    for d in reversed(result.decisions):
        if d.policy_state is PolicyState.READY and d.freqs is not None:
            return d.freqs.imc_max_ghz
    return None
