"""repro: reproduction of *Explicit uncore frequency scaling for energy
optimisation policies with EAR in Intel architectures* (CLUSTER 2021).

The package implements the full EAR stack -- DynAIS loop detection,
signatures, trained energy models, the policy plugin API and the
``min_energy_to_solution`` policy with explicit UFS -- on top of a
calibrated simulated Skylake-SP cluster (MSRs, hardware UFS control
loop, RAPL/Node Manager sensors, DC power model).

Quick start::

    from repro import EarConfig, run_workload
    from repro.workloads import bt_mz_c_openmp

    wl = bt_mz_c_openmp()
    baseline = run_workload(wl, ear_config=None, seed=1)        # no policy
    me_eufs = run_workload(wl, ear_config=EarConfig(), seed=1)  # ME + eUFS
    saving = 1 - me_eufs.dc_energy_j / baseline.dc_energy_j
"""

from .ear import (
    AccountingDB,
    Avx512Model,
    DefaultModel,
    Dynais,
    EarConfig,
    Eard,
    Eargm,
    EargmConfig,
    Earl,
    MinEnergyPolicy,
    MinTimePolicy,
    NodeFreqs,
    PolicyPlugin,
    PolicyState,
    Signature,
    available_policies,
    create_policy,
    make_model,
    register_policy,
    steady_state_signature,
    train_coefficients,
)
from .errors import (
    ConfigError,
    EarError,
    ExperimentError,
    HardwareError,
    ModelError,
    MsrError,
    PolicyError,
    ReproError,
    SignatureError,
)
from .hw import GPU_NODE, SD530, Cluster, Node, NodeConfig
from .sim import RunResult, SimulationEngine, run_workload
from .workloads import PhaseProfile, Workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # EAR framework
    "EarConfig",
    "Earl",
    "Eard",
    "Eargm",
    "EargmConfig",
    "AccountingDB",
    "Dynais",
    "Signature",
    "Avx512Model",
    "DefaultModel",
    "make_model",
    "train_coefficients",
    "steady_state_signature",
    "MinEnergyPolicy",
    "MinTimePolicy",
    "NodeFreqs",
    "PolicyPlugin",
    "PolicyState",
    "available_policies",
    "create_policy",
    "register_policy",
    # hardware
    "SD530",
    "GPU_NODE",
    "Node",
    "NodeConfig",
    "Cluster",
    # simulation
    "SimulationEngine",
    "run_workload",
    "RunResult",
    # workloads
    "Workload",
    "PhaseProfile",
    # errors
    "ReproError",
    "HardwareError",
    "MsrError",
    "EarError",
    "PolicyError",
    "ModelError",
    "SignatureError",
    "ConfigError",
    "ExperimentError",
]
