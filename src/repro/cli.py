"""Command-line interface: ``repro-ear``.

Subcommands::

    repro-ear list                      # workloads and policies
    repro-ear run -w BT-MZ.C -p me_eufs # one workload, one config
    repro-ear table 3                   # regenerate a paper table
    repro-ear figure 4                  # regenerate a paper figure
    repro-ear sweep -w BT-MZ.C.mpi      # fixed-uncore motivation sweep
    repro-ear resilience -w BT-MZ.C     # fault-intensity robustness sweep
    repro-ear timeline -w BT-MZ.C       # ASCII frequency timeline of one run
    repro-ear telemetry -w BT-MZ.C      # event timelines from a telemetry run
    repro-ear learn --validate          # coefficient learning phase (grid -> fit -> save)
    repro-ear campaign --budget-mj 14   # application list under EARGM budget control
    repro-ear cluster --n-jobs 12       # cluster campaign: scheduler + EARDBD + EARGM
    repro-ear eacct --db accounting.json  # query an exported accounting DB
    repro-ear export 3 -o t3.csv        # export a paper table as CSV
    repro-ear serve --socket ear.sock   # persistent service: streaming submissions
    repro-ear submit -w synt.cpu.1n     # stream a job into a running service
    repro-ear status --drain            # query/drain/stop a running service

The full reference lives in ``docs/CLI.md``, generated from the same
argparse tree by ``repro-ear --dump-docs`` (so it can never drift from
the implementation).  Everything prints the same ASCII artefacts the
benchmark harness produces.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from .ear.config import EarConfig
from .experiments import (
    figure1,
    figure3_bqcd,
    figure4_btmz,
    figure5_gromacs1,
    figure6_gromacs2,
    figure7_hpcg_pop,
    figure8_dumses_afid,
    format_figure_series,
    format_table,
    ghz,
    pct,
    table1_kernel_metrics,
    table2_kernel_characteristics,
    table3_kernel_savings,
    table4_kernel_frequencies,
    table5_application_characteristics,
    table6_application_frequencies,
    table7_dc_vs_pck,
    uncore_sweep,
)
from .experiments.runner import compare, standard_configs
from .workloads.applications import mpi_applications
from .workloads.kernels import bt_mz_c_mpi, lu_d_mpi, single_node_kernels

__all__ = ["main", "build_parser", "dump_docs"]


def _all_workloads():
    return list(single_node_kernels()) + [bt_mz_c_mpi(), lu_d_mpi()] + list(
        mpi_applications()
    )


def _find_workload(name: str):
    for wl in _all_workloads():
        if wl.name.lower() == name.lower():
            return wl
    names = ", ".join(w.name for w in _all_workloads())
    raise SystemExit(f"unknown workload {name!r}; available: {names}")


def _cmd_list(_args) -> int:
    from .ear.policies import available_policies

    print("Workloads:")
    for wl in _all_workloads():
        print(
            f"  {wl.name:<14} {wl.n_nodes:>2} node(s)  {wl.n_processes:>4} proc  "
            f"~{wl.total_ref_time_s:.0f}s  - {wl.description}"
        )
    print("\nPolicies:", ", ".join(available_policies()))
    return 0


def _with_backend(wl, backend: str | None):
    """Rebind a workload's node type to another uncore backend.

    ``None`` (and the node type's own backend) leave the workload —
    and therefore every cache key and golden — untouched.
    """
    if backend is None or backend == wl.node_config.uncore_backend:
        return wl
    import dataclasses

    return wl.retargeted(
        dataclasses.replace(wl.node_config, uncore_backend=backend)
    )


def _cmd_run(args) -> int:
    wl = _with_backend(_find_workload(args.workload), args.uncore_backend)
    configs = standard_configs(
        cpu_policy_th=args.cpu_th,
        unc_policy_th=args.unc_th,
        coefficients_path=args.coefficients,
        regions=True,
    )
    if args.policy != "all":
        if args.policy not in configs:
            raise SystemExit(f"unknown config {args.policy!r}; use {sorted(configs)}")
        configs = {"none": None, args.policy: configs[args.policy]}
    cmp_ = compare(wl, configs, scale=args.scale, engine=args.engine)
    rows = [
        [
            name,
            pct(c.time_penalty),
            pct(c.power_saving),
            pct(c.energy_saving),
            ghz(c.result.avg_cpu_freq_ghz),
            ghz(c.result.avg_imc_freq_ghz),
        ]
        for name, c in cmp_.items()
    ]
    print(
        format_table(
            f"{wl.name}: policies vs nominal execution",
            ["config", "time penalty", "power saving", "energy saving", "cpu", "imc"],
            rows,
        )
    )
    return 0


def _cmd_table(args) -> int:
    scale = args.scale
    n = args.number
    if n == 1:
        rows = table1_kernel_metrics(scale=scale)
        print(
            format_table(
                "Table I: kernels under min_energy with HW IMC selection",
                ["kernel", "CPI", "GB/s", "CPU GHz", "IMC GHz"],
                [
                    [r["kernel"], f"{r['cpi']:.2f}", f"{r['gbs']:.1f}", ghz(r["cpu_ghz"]), ghz(r["imc_ghz"])]
                    for r in rows
                ],
            )
        )
    elif n == 2:
        rows = table2_kernel_characteristics(scale=scale)
        print(
            format_table(
                "Table II: single-node kernels",
                ["kernel", "time (s)", "CPI", "GB/s", "DC power (W)"],
                [
                    [r["kernel"], f"{r['time_s']:.0f}", f"{r['cpi']:.2f}", f"{r['gbs']:.1f}", f"{r['dc_power_w']:.0f}"]
                    for r in rows
                ],
            )
        )
    elif n == 3:
        rows = table3_kernel_savings(scale=scale)
        print(
            format_table(
                "Table III: kernel savings (ME / ME+eU)",
                ["kernel", "pen ME", "pen eU", "pow ME", "pow eU", "en ME", "en eU"],
                [
                    [
                        r["kernel"],
                        pct(r["me"]["time_penalty"]),
                        pct(r["me_eufs"]["time_penalty"]),
                        pct(r["me"]["power_saving"]),
                        pct(r["me_eufs"]["power_saving"]),
                        pct(r["me"]["energy_saving"]),
                        pct(r["me_eufs"]["energy_saving"]),
                    ]
                    for r in rows
                ],
            )
        )
    elif n == 4:
        rows = table4_kernel_frequencies(scale=scale)
        print(
            format_table(
                "Table IV: kernel avg CPU/IMC frequencies",
                ["kernel", "none cpu/imc", "ME cpu/imc", "ME+eU cpu/imc"],
                [
                    [
                        r["kernel"],
                        f"{ghz(r['none']['cpu'])}/{ghz(r['none']['imc'])}",
                        f"{ghz(r['me']['cpu'])}/{ghz(r['me']['imc'])}",
                        f"{ghz(r['me_eufs']['cpu'])}/{ghz(r['me_eufs']['imc'])}",
                    ]
                    for r in rows
                ],
            )
        )
    elif n == 5:
        rows = table5_application_characteristics(scale=scale)
        print(
            format_table(
                "Table V: MPI applications",
                ["application", "time (s)", "CPI", "GB/s", "DC power (W)"],
                [
                    [r["application"], f"{r['time_s']:.0f}", f"{r['cpi']:.2f}", f"{r['gbs']:.1f}", f"{r['dc_power_w']:.0f}"]
                    for r in rows
                ],
            )
        )
    elif n == 6:
        rows = table6_application_frequencies(scale=scale)
        print(
            format_table(
                "Table VI: application avg CPU/IMC frequencies",
                ["application", "none cpu/imc", "ME cpu/imc", "ME+eU cpu/imc"],
                [
                    [
                        r["application"],
                        f"{ghz(r['none']['cpu'])}/{ghz(r['none']['imc'])}",
                        f"{ghz(r['me']['cpu'])}/{ghz(r['me']['imc'])}",
                        f"{ghz(r['me_eufs']['cpu'])}/{ghz(r['me_eufs']['imc'])}",
                    ]
                    for r in rows
                ],
            )
        )
    elif n == 7:
        rows = table7_dc_vs_pck(scale=scale)
        print(
            format_table(
                "Table VII: DC node vs RAPL PCK power savings (ME+eU)",
                ["application", "DC saving", "PCK saving"],
                [
                    [r["application"], pct(r["dc_saving"]), pct(r["pck_saving"])]
                    for r in rows
                ],
            )
        )
    else:
        raise SystemExit("tables 1-7 exist")
    return 0


def _cmd_figure(args) -> int:
    scale = args.scale
    n = args.number
    if n == 1:
        sweeps = figure1(scale=scale)
        for name, sweep in sweeps.items():
            rows = [
                [
                    ghz(p.uncore_ghz),
                    pct(p.time_penalty),
                    pct(p.power_saving),
                    pct(p.energy_saving),
                    pct(p.gbs_penalty),
                ]
                for p in sweep.points
            ]
            print(
                format_table(
                    f"Figure 1: {name} fixed-uncore sweep (CPU {ghz(sweep.cpu_ghz)} GHz, "
                    f"HW ref IMC {ghz(sweep.hw_reference_imc_ghz)} GHz)",
                    ["uncore GHz", "time pen", "power save", "energy save", "GB/s pen"],
                    rows,
                )
            )
    elif n == 3:
        print(format_figure_series("Figure 3: BQCD", figure3_bqcd(scale=scale)))
    elif n == 4:
        print(format_figure_series("Figure 4: BT-MZ", figure4_btmz(scale=scale)))
    elif n == 5:
        for key, series in figure5_gromacs1(scale=scale).items():
            print(format_figure_series(f"Figure 5: GROMACS(I) {key}", series))
    elif n == 6:
        print(format_figure_series("Figure 6: GROMACS(II)", figure6_gromacs2(scale=scale)))
    elif n == 7:
        for key, series in figure7_hpcg_pop(scale=scale).items():
            print(format_figure_series(f"Figure 7: {key}", series))
    elif n == 8:
        for key, series in figure8_dumses_afid(scale=scale).items():
            print(format_figure_series(f"Figure 8: {key}", series))
    else:
        raise SystemExit("figures 1 and 3-8 exist")
    return 0


def _cmd_timeline(args) -> int:
    from .ear.config import EarConfig
    from .experiments.trace import render_timeline, settled_imc_max_ghz
    from .sim.engine import run_workload

    wl = _find_workload(args.workload)
    if args.scale != 1.0:
        wl = wl.scaled_iterations(args.scale)
    cfg = EarConfig(
        policy=args.policy, cpu_policy_th=args.cpu_th, unc_policy_th=args.unc_th
    )
    # node 0 renders from the engine trace; other nodes only exist in
    # the per-node telemetry stream.
    result = run_workload(
        wl,
        ear_config=cfg,
        seed=1,
        record_trace=True,
        telemetry=args.node > 0,
        engine=args.engine,
    )
    try:
        print(render_timeline(result, node=args.node))
    except ValueError as exc:
        raise SystemExit(str(exc))
    settled = settled_imc_max_ghz(result)
    if settled is not None:
        print(f"  settled uncore ceiling: {settled:.1f} GHz")
    return 0


def _cmd_telemetry(args) -> int:
    from .experiments.parallel import RunRequest, default_pool
    from .experiments.resilience import reference_fault_plan
    from .telemetry import (
        events_to_jsonl,
        metrics_to_prometheus,
        render_degradation_ladder,
        render_descent_timeline,
        stage_timing_summary,
    )

    wl = _find_workload(args.workload)
    configs = standard_configs(cpu_policy_th=args.cpu_th, unc_policy_th=args.unc_th)
    if args.policy not in configs:
        raise SystemExit(f"unknown config {args.policy!r}; use {sorted(configs)}")
    plan = (
        reference_fault_plan().scaled(args.fault_intensity)
        if args.fault_intensity > 0
        else None
    )
    request = RunRequest(
        workload=wl,
        ear_config=configs[args.policy],
        seed=args.seed,
        scale=args.scale,
        fault_plan=plan,
        telemetry=True,
    )
    # through the pool: a cached telemetry run is reused, a cached
    # telemetry-free run is upgraded in place.
    (result,) = default_pool().run_many([request])
    try:
        print(render_descent_timeline(result, node=args.node))
        print()
        print(render_degradation_ladder(result, node=args.node))
    except ValueError as exc:
        raise SystemExit(str(exc))
    rows = stage_timing_summary(result)
    if rows:
        print(
            "\n"
            + format_table(
                f"{wl.name}: stage timing",
                ["node", "name", "count", "total (s)", "mean (s)"],
                [
                    [
                        str(r["node"]),
                        r["name"],
                        str(r["count"]),
                        f"{r['total_s']:.2f}",
                        f"{r['mean_s']:.3f}",
                    ]
                    for r in rows
                ],
            )
        )
    if args.jsonl:
        path = pathlib.Path(args.jsonl)
        path.write_text(events_to_jsonl(result))
        print(f"wrote {len(result.events)} events to {path}")
    if args.metrics:
        path = pathlib.Path(args.metrics)
        path.write_text(metrics_to_prometheus(result))
        print(f"wrote metrics to {path}")
    return 0


def _cmd_cluster(args) -> int:
    import json

    from .cluster import (
        ClusterConfig,
        EardbdConfig,
        MarketConfig,
        TraceConfig,
        compare_cluster_policies,
        generate_trace,
        render_cluster_report,
        render_comparison,
    )
    from .cluster.pool import parse_node_mix
    from .ear.eargm import EargmConfig
    from .experiments.resilience import reference_fault_plan

    node_mix = parse_node_mix(args.node_mix) if args.node_mix else None
    n_nodes = (
        sum(count for _, count in node_mix) if node_mix is not None else args.nodes
    )
    trace = generate_trace(
        TraceConfig(
            n_jobs=args.n_jobs,
            seed=args.seed,
            mean_interarrival_s=args.interarrival_s,
            burst_fraction=args.burst,
            scale=args.scale,
        )
    )
    eargm = (
        EargmConfig(budget_j=args.budget_mj * 1e6, horizon_s=args.horizon_s)
        if args.budget_mj is not None
        else None
    )
    plan = (
        reference_fault_plan().scaled(args.fault_intensity)
        if args.fault_intensity > 0
        else None
    )
    market = None
    if args.power_market:
        # the power cap derives from the energy budget over the EARGM
        # horizon unless pinned directly: B MJ over H seconds sustains
        # exactly B*1e6/H watts.
        if args.budget_w is not None:
            budget_w = args.budget_w
        elif args.budget_mj is not None:
            budget_w = args.budget_mj * 1e6 / args.horizon_s
        else:
            raise SystemExit("--power-market needs --budget-w or --budget-mj")
        market = MarketConfig(budget_w=budget_w)
    cluster = ClusterConfig(
        n_nodes=n_nodes,
        eargm=eargm,
        eardbd=EardbdConfig(
            flush_interval_s=args.flush_interval_s, buffer_limit=args.buffer_limit
        ),
        backfill=not args.no_backfill,
        fault_plan=plan,
        telemetry=True,
        node_mix=node_mix,
        # mixed campaigns arm per-job telemetry so the per-die
        # uncore/limit_write streams land in the node results.
        job_telemetry=node_mix is not None,
        market=market,
    )
    configs = standard_configs(
        cpu_policy_th=args.cpu_th, unc_policy_th=args.unc_th, regions=True
    )
    if args.policies:
        # explicit comparison list; "monitoring" aliases the no-policy
        # baseline under its service name.
        names = {}
        for raw in args.policies.split(","):
            name = raw.strip()
            if not name:
                continue
            key = "none" if name == "monitoring" else name
            if key not in configs:
                raise SystemExit(
                    f"unknown policy {name!r}; use "
                    "none|monitoring|me|me_eufs|me_eufs_regions"
                )
            names[name] = configs[key]
        if not names:
            raise SystemExit("--policies needs at least one policy name")
    elif args.policy == "compare":
        names = {"none": None, "me": configs["me"], "me_eufs": configs["me_eufs"]}
    elif args.policy in configs:
        names = {args.policy: configs[args.policy]}
    else:
        raise SystemExit(
            f"unknown policy {args.policy!r}; use "
            "none|me|me_eufs|me_eufs_regions|compare"
        )
    from .experiments.journal import CampaignJournal, campaign_id
    from .experiments.parallel import default_pool

    cid = campaign_id(
        "cluster",
        sorted(names),
        args.n_jobs,
        args.seed,
        args.interarrival_s,
        args.burst,
        args.scale,
        n_nodes,
        args.fault_intensity,
        args.budget_mj,
        args.cpu_th,
        args.unc_th,
        not args.no_backfill,
        args.node_mix or "",
        args.power_market,
        args.budget_w,
    )
    journal = CampaignJournal.for_campaign(
        cid,
        directory=args.journal_dir,
        resume=args.resume,
        meta={"command": "cluster", "policy": args.policy},
    )
    if args.resume:
        print(f"resuming cluster campaign {cid}: {journal.replay().describe()}")
    _set_resume_hint(
        f"campaign journal is safe at {journal.path}; "
        "rerun the same command with --resume to continue"
    )
    pool = default_pool()
    pool.journal = journal
    try:
        campaigns = compare_cluster_policies(trace, cluster, names)
        journal.finish()
    finally:
        pool.journal = None
        journal.close()
    for name, campaign in campaigns.items():
        print(render_cluster_report(campaign.report, jobs=not args.summary))
        print()
    if len(campaigns) > 1:
        print(render_comparison(campaigns))
    last = campaigns[list(campaigns)[-1]]
    if args.accounting:
        path = last.accounting.save(args.accounting)
        print(f"wrote accounting DB ({last.accounting.node_rows()} node rows) to {path}")
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps({n: c.report.to_dict() for n, c in campaigns.items()}, indent=2)
            + "\n"
        )
        print(f"wrote report JSON to {args.json}")
    return 0


def _cmd_eacct(args) -> int:
    from .ear.accounting import AccountingDB

    db = AccountingDB.load(args.db)
    if args.job is not None:
        records = [db.job(args.job)]
    else:
        records = db.jobs(workload=args.workload, policy=args.policy)
    if args.as_json:
        import json
        from dataclasses import asdict

        print(json.dumps([asdict(r) for r in records], indent=2, sort_keys=True))
        return 0
    rows = [
        [
            str(r.job_id),
            r.workload,
            r.policy,
            str(len(r.nodes)),
            f"{r.seconds:.1f}",
            f"{r.dc_energy_j / 1e6:.3f}",
            f"{r.avg_node_power_w:.0f}",
        ]
        for r in records
    ]
    print(
        format_table(
            f"eacct: {len(records)} job(s), {db.total_energy_j(records) / 1e6:.2f} MJ",
            ["job", "workload", "policy", "nodes", "seconds", "MJ", "W/node"],
            rows,
        )
    )
    return 0


def _cmd_campaign(args) -> int:
    from .ear.eargm import Eargm, EargmConfig
    from .ear.manager import ClusterManager
    from .experiments.tables import app_thresholds

    eargm = Eargm(
        EargmConfig(budget_j=args.budget_mj * 1e6, horizon_s=args.horizon_s)
    )
    manager = ClusterManager(eargm)
    print(
        f"{'job':>4} {'application':<12} {'cap':>4} {'time':>9} {'energy':>9} {'budget':>9}"
    )
    for wl in mpi_applications():
        if args.scale != 1.0:
            wl = wl.scaled_iterations(args.scale)
        job = manager.submit(wl, cpu_policy_th=app_thresholds(wl.name))
        print(
            f"{job.job_id:>4} {wl.name:<12} {job.pstate_offset_applied:>4} "
            f"{job.result.time_s:8.1f}s {job.result.dc_energy_j / 1e6:7.2f}MJ "
            f"{job.level_before.name:>9}"
        )
    print(
        f"\ncampaign: {manager.total_energy_j / 1e6:.1f} MJ consumed, "
        f"final level {eargm.level().name}"
    )
    if args.accounting:
        path = manager.accounting.save(args.accounting)
        print(f"wrote accounting DB to {path}")
    return 0


def _cmd_export(args) -> int:
    from .experiments.export import rows_to_csv

    builders = {
        1: table1_kernel_metrics,
        2: table2_kernel_characteristics,
        3: table3_kernel_savings,
        4: table4_kernel_frequencies,
        5: table5_application_characteristics,
        6: table6_application_frequencies,
        7: table7_dc_vs_pck,
    }
    try:
        builder = builders[args.number]
    except KeyError:
        raise SystemExit("tables 1-7 exist")
    text = rows_to_csv(builder(scale=args.scale))
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_sweep(args) -> int:
    wl = _with_backend(_find_workload(args.workload), args.uncore_backend)
    sweep = uncore_sweep(
        wl, cpu_ghz=args.cpu_ghz, scale=args.scale, engine=args.engine
    )
    rows = [
        [
            ghz(p.uncore_ghz),
            pct(p.time_penalty),
            pct(p.power_saving),
            pct(p.energy_saving),
            pct(p.gbs_penalty),
        ]
        for p in sweep.points
    ]
    print(
        format_table(
            f"{wl.name} fixed-uncore sweep at CPU {ghz(args.cpu_ghz)} GHz",
            ["uncore GHz", "time pen", "power save", "energy save", "GB/s pen"],
            rows,
        )
    )
    return 0


def _cmd_resilience(args) -> int:
    from .experiments.resilience import (
        DEFAULT_INTENSITIES,
        infra_resilience_sweep,
        resilience_sweep,
    )

    if args.intensities:
        try:
            intensities = tuple(float(x) for x in args.intensities.split(","))
        except ValueError:
            raise SystemExit(f"bad --intensities {args.intensities!r}; use e.g. 0,0.5,1,2")
    else:
        intensities = DEFAULT_INTENSITIES
    if args.infra:
        sweep = infra_resilience_sweep(
            intensities=intensities,
            n_jobs=args.n_jobs,
            n_nodes=args.nodes,
            scale=args.scale,
        )
        print(
            format_table(
                f"cluster of {sweep.n_nodes} nodes, {sweep.n_jobs} jobs: "
                "control-plane fault sweep (node crashes + EARDBD restarts)",
                [
                    "intensity",
                    "completed",
                    "failed",
                    "requeues",
                    "node fails",
                    "dbd restarts",
                    "pool retries",
                    "makespan",
                    "energy",
                    "reconciled",
                ],
                [
                    [
                        f"{p.intensity:.2f}",
                        f"{p.n_completed}/{p.n_jobs}",
                        str(p.n_failed),
                        str(p.n_requeues),
                        str(p.n_node_failures),
                        str(p.eardbd_restarts),
                        str(p.pool_retries),
                        f"{p.makespan_s:.0f}s",
                        f"{p.total_energy_j / 1e6:.2f}MJ",
                        "yes" if p.eardbd_reconciled else "NO",
                    ]
                    for p in sweep.points
                ],
            )
        )
        return 0
    wl = _find_workload(args.workload)
    configs = standard_configs(cpu_policy_th=args.cpu_th, unc_policy_th=args.unc_th)
    if args.policy not in configs or args.policy == "none":
        raise SystemExit(
            f"unknown policy config {args.policy!r}; use "
            f"{sorted(k for k in configs if k != 'none')}"
        )
    sweep = resilience_sweep(
        wl,
        configs[args.policy],
        config_name=args.policy,
        intensities=intensities,
        scale=args.scale,
    )
    rows = []
    for p in sweep.points:
        h = p.health
        rows.append(
            [
                f"{p.intensity:.2f}",
                str(h.faults_injected),
                str(h.samples_rejected + h.windows_rejected),
                str(h.windows_stalled),
                str(h.msr_retries),
                str(h.watchdog_restores),
                f"{h.degraded_s:.0f}s",
                pct(p.time_penalty),
                pct(p.energy_saving),
            ]
        )
    print(
        format_table(
            f"{wl.name}: {args.policy} under fault injection "
            f"(savings vs clean no-policy reference)",
            [
                "intensity",
                "faults",
                "rejected",
                "stalled",
                "retries",
                "watchdog",
                "degraded",
                "time pen",
                "energy save",
            ],
            rows,
        )
    )
    return 0


def _cmd_learn(args) -> int:
    import dataclasses
    import json

    from .ear.models import DEFAULT_COEFFICIENTS_DIR
    from .errors import LearningError
    from .cluster.pool import GENERATIONS
    from .hw.node import BROADWELL_NODE, GPU_NODE, SD530
    from .learning import LearningCampaign, LearningGrid, default_kernels
    from .telemetry.recorder import EventRecorder

    node = {
        "sd530": SD530,
        "gpu": GPU_NODE,
        "broadwell": BROADWELL_NODE,
        # the mixed-cluster generation: TPMI backend, per-die uncore.
        "graniterapids": GENERATIONS["graniterapids"],
    }[args.node_type]
    grid = (
        LearningGrid.full(node) if args.grid == "full" else LearningGrid.coarse(node)
    )
    if args.scale is not None:
        grid = dataclasses.replace(grid, scale=args.scale)
    recorder = EventRecorder(node=-1)
    try:
        kernels = None
        if args.kernels:
            battery = default_kernels(node)
            wanted = [k.strip() for k in args.kernels.split(",") if k.strip()]
            by_name = {w.name.lower(): w for w in battery}
            unknown = [k for k in wanted if k.lower() not in by_name]
            if unknown:
                raise SystemExit(
                    f"unknown kernel(s) {', '.join(unknown)}; battery: "
                    f"{', '.join(w.name for w in battery)}"
                )
            kernels = tuple(by_name[k.lower()] for k in wanted)
        campaign = LearningCampaign(
            node, kernels=kernels, grid=grid, recorder=recorder
        )
        from .experiments.journal import CampaignJournal

        cid = campaign.journal_id()
        journal = CampaignJournal.for_campaign(
            cid,
            directory=args.journal_dir,
            resume=args.resume,
            meta={"command": "learn", "node_type": node.name, "grid": args.grid},
        )
        if args.resume:
            print(f"resuming campaign {cid}: {journal.replay().describe()}")
        campaign.journal = journal
        _set_resume_hint(
            f"campaign journal is safe at {journal.path}; "
            "rerun the same command with --resume to continue"
        )
        out_dir = None if args.out == "none" else (args.out or DEFAULT_COEFFICIENTS_DIR)
        print(
            f"learning {node.name}: {len(campaign.kernels)} kernel(s) x "
            f"{campaign.grid.runs_per_kernel} grid runs each "
            f"(grid={args.grid}, scale={campaign.grid.scale}, journal={cid})"
        )
        try:
            table, report = campaign.run(
                out_dir=out_dir, validate=args.validate, threshold=args.threshold
            )
            journal.finish()
        finally:
            journal.close()
    except LearningError as exc:
        raise SystemExit(f"learning failed: {exc}")
    quality = table.quality
    print(
        f"fitted {len(table)} P-state pairs from {quality.n_observations} "
        f"observations ({', '.join(quality.kernels)})"
    )
    print(
        f"  min R^2: CPI {quality.min_r2_cpi:.4f}, power {quality.min_r2_power:.4f}"
    )
    print(
        f"  worst training error: time {quality.max_rel_time_err:.1%}, "
        f"power {quality.max_rel_power_err:.1%}"
    )
    if quality.avx512_licence_ghz is not None:
        print(f"  measured AVX-512 licence frequency: {quality.avx512_licence_ghz:.1f} GHz")
    if report is not None:
        print(report.summary())
    if out_dir is not None:
        from .ear.models import coefficients_file

        backend = None if node.uncore_backend == "msr" else node.uncore_backend
        print(f"saved to {coefficients_file(out_dir, node.name, backend=backend)}")
        print(
            "use it with EarConfig(coefficients_path=...) or delete the file "
            "to return to the analytic fallback"
        )
    if args.jsonl:
        path = pathlib.Path(args.jsonl)
        path.write_text(
            "".join(json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in recorder.events)
        )
        print(f"wrote {len(recorder.events)} learning events to {path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .service import EarService, ServiceConfig

    config = ServiceConfig(
        socket_path=args.socket,
        port=args.port,
        name=args.name,
        n_nodes=args.n_nodes,
        policy=args.policy,
        budget_mj=args.budget_mj,
        horizon_s=args.horizon_s,
        flush_interval_s=args.flush_interval_s,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
        journal=not args.no_journal,
        journal_dir=args.journal_dir,
        journal_fsync=not args.no_fsync,
        resume=args.resume,
    )
    service = EarService(config)

    async def _run() -> int:
        await service.start()
        listening = []
        if config.socket_path:
            listening.append(f"unix:{config.socket_path}")
        if config.port is not None:
            listening.append(f"tcp:{config.host}:{config.port}")
        print(f"repro-ear service {config.name!r} listening on {', '.join(listening)}")
        if args.resume and service.journal is not None:
            print(
                f"resumed journal {service.journal.path}: "
                f"{service.resumed_runs} runs already completed"
            )
        print("endpoints: /metrics /events /status (HTTP) + JSON-line ops; "
              "SIGTERM drains and exits")
        return await service.serve_forever()

    return asyncio.run(_run())


def _service_client(args):
    from .service import ServiceClient

    return ServiceClient(args.socket, port=args.port, timeout=args.timeout)


def _cmd_submit(args) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        receipt = client.submit(
            args.workload,
            policy=args.policy,
            seed=args.seed,
            scale=args.scale,
            count=args.count,
            cluster=args.cluster,
            submit_s=args.submit_s,
            tag=args.tag,
        )
    except ServiceError as exc:
        raise SystemExit(f"submit rejected: {exc}")
    print(
        f"accepted {receipt['accepted']} job(s) on cluster "
        f"{receipt['cluster']!r} ({receipt['pending']} pending)"
    )
    return 0


def _cmd_status(args) -> int:
    import json

    from .service import ServiceError

    client = _service_client(args)
    try:
        if args.stop:
            client.shutdown(drain=True)
            print("shutdown requested (graceful drain)")
            return 0
        if args.metrics:
            print(client.metrics(), end="")
            return 0
        if args.tail:
            for line in client.tail(args.tail):
                print(line)
            return 0
        status = client.drain() if args.drain else client.status()
    except ServiceError as exc:
        raise SystemExit(f"status failed: {exc}")
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(
        f"service {status['service']!r} protocol v{status['protocol']} "
        f"({'accepting' if status['accepting'] else 'draining'})"
    )
    for name, row in status["clusters"].items():
        line = (
            f"  {name}: policy={row['policy']} submitted={row['submitted']} "
            f"completed={row['completed']} failed={row['failed']} "
            f"rejected={row['rejected']} pending={row['pending']} "
            f"queued={row['queued']} running={row['running']} "
            f"energy={row['energy_j'] / 1e6:.3f} MJ clock={row['clock_s']:.0f} s"
        )
        print(line)
        if "eargm" in row:
            g = row["eargm"]
            print(
                f"    eargm: {g['level']} horizon "
                f"{g['horizon_consumed_j'] / 1e6:.3f}/{g['budget_j'] / 1e6:.3f} MJ, "
                f"{g['horizons_completed']} horizon(s) completed"
            )
    ev = status["events"]
    print(
        f"  events: {ev['total']} total, {ev['buffered']} buffered, "
        f"{ev['dropped']} dropped"
    )
    if "cache" in status:
        c = status["cache"]
        print(
            f"  cache: {c['entries']} entries, {c['hits']} hits, "
            f"{c['misses']} misses, {c['evictions']} evictions"
        )
    return 0


def _default_cache_dir() -> pathlib.Path:
    """Persistent run-cache location: ``$REPRO_CACHE_DIR`` or ``results/.cache``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return pathlib.Path(env) if env else pathlib.Path("results") / ".cache"


def _configure_execution(args) -> None:
    """Install the CLI's execution pool: workers, cache, retry policy."""
    from .experiments.parallel import configure_defaults
    from .experiments.resilient import RetryPolicy

    configure_defaults(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else _default_cache_dir(),
        use_cache=not args.no_cache,
        retry=RetryPolicy(max_attempts=args.retries, timeout_s=args.job_timeout),
    )


#: printed after a Ctrl-C/SIGTERM when the interrupted command left a
#: resumable journal behind; set by the journaling subcommands.
_RESUME_HINT: str | None = None


def _set_resume_hint(hint: str) -> None:
    """Arm the interrupt handler's resume message for this invocation."""
    global _RESUME_HINT
    _RESUME_HINT = hint


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro-ear`` argparse tree.

    Shared by :func:`main`, the docs generator (:func:`dump_docs`) and
    the docs-consistency checker (:mod:`repro.docscheck`), so the CLI,
    its reference documentation and the commands quoted in prose can
    never drift apart silently.
    """
    parser = argparse.ArgumentParser(
        prog="repro-ear",
        description="EAR explicit-UFS reproduction (CLUSTER 2021) on a simulated Skylake cluster",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment execution (default 1 = serial; "
        "0 = all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent run cache (default: results/.cache, "
        "override the location with REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--engine",
        choices=("scalar", "batched"),
        default="scalar",
        help="simulation inner loop: the scalar reference or the batched "
        "numpy kernel (equivalent within 1e-9; see benchmarks/test_perf.py)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per experiment before it is quarantined as a poison "
        "job (worker crashes and timeouts retry under seeded backoff)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        dest="job_timeout",
        help="per-experiment wall-clock limit in seconds (needs --jobs > 1; "
        "default: unlimited)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and policies").set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one workload under policies")
    p_run.add_argument("-w", "--workload", required=True)
    p_run.add_argument(
        "-p", "--policy", default="all", help="none|me|me_eufs|me_eufs_regions|all"
    )
    p_run.add_argument("--cpu-th", type=float, default=0.05, dest="cpu_th")
    p_run.add_argument("--unc-th", type=float, default=0.02, dest="unc_th")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument(
        "--coefficients",
        default=None,
        help="fitted coefficient table (file) or directory of per-node-type "
        "tables; default: the analytic coefficients (see docs/MODELS.md)",
    )
    p_run.add_argument(
        "--uncore-backend",
        default=None,
        choices=["msr", "sysfs", "tpmi"],
        dest="uncore_backend",
        help="uncore control path to run the workload's node type on "
        "(default: the node type's own backend; SD530 uses msr)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_table = sub.add_parser("table", help="regenerate a paper table (1-7)")
    p_table.add_argument("number", type=int)
    p_table.add_argument("--scale", type=float, default=1.0)
    p_table.set_defaults(fn=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure (1, 3-8)")
    p_fig.add_argument("number", type=int)
    p_fig.add_argument("--scale", type=float, default=1.0)
    p_fig.set_defaults(fn=_cmd_figure)

    p_sweep = sub.add_parser("sweep", help="fixed-uncore sweep for a workload")
    p_sweep.add_argument("-w", "--workload", required=True)
    p_sweep.add_argument("--cpu-ghz", type=float, default=2.4, dest="cpu_ghz")
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument(
        "--uncore-backend",
        default=None,
        choices=["msr", "sysfs", "tpmi"],
        dest="uncore_backend",
        help="uncore control path to sweep on (default: the node type's own)",
    )
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_res = sub.add_parser(
        "resilience", help="fault-injection sweep: graceful-degradation table"
    )
    p_res.add_argument(
        "-w",
        "--workload",
        default="BT-MZ.C",
        help="workload for the hardware sweep (ignored with --infra)",
    )
    p_res.add_argument("-p", "--policy", default="me_eufs", help="me|me_eufs")
    p_res.add_argument(
        "--intensities",
        default=None,
        help="comma-separated fault-intensity multipliers (default 0,0.5,1,2,4)",
    )
    p_res.add_argument(
        "--infra",
        action="store_true",
        help="sweep the control-plane fault channels instead (node crashes "
        "mid-job, EARDBD restarts) over a cluster campaign, reporting "
        "requeue/retry tallies per intensity",
    )
    p_res.add_argument(
        "--nodes", type=int, default=6, help="cluster size for --infra"
    )
    p_res.add_argument(
        "--n-jobs",
        type=int,
        default=10,
        dest="n_jobs",
        help="trace length for --infra",
    )
    p_res.add_argument("--cpu-th", type=float, default=0.05, dest="cpu_th")
    p_res.add_argument("--unc-th", type=float, default=0.02, dest="unc_th")
    p_res.add_argument("--scale", type=float, default=1.0)
    p_res.set_defaults(fn=_cmd_resilience)

    p_tl = sub.add_parser("timeline", help="ASCII frequency timeline of one run")
    p_tl.add_argument("-w", "--workload", required=True)
    p_tl.add_argument("-p", "--policy", default="min_energy")
    p_tl.add_argument("--cpu-th", type=float, default=0.05, dest="cpu_th")
    p_tl.add_argument("--unc-th", type=float, default=0.02, dest="unc_th")
    p_tl.add_argument("--scale", type=float, default=1.0)
    p_tl.add_argument(
        "--node", type=int, default=0, help="node to render (default 0)"
    )
    p_tl.set_defaults(fn=_cmd_timeline)

    p_tel = sub.add_parser(
        "telemetry",
        help="policy-descent + degradation-ladder timelines from a telemetry run",
    )
    p_tel.add_argument("-w", "--workload", required=True)
    p_tel.add_argument("-p", "--policy", default="me_eufs", help="none|me|me_eufs")
    p_tel.add_argument("--seed", type=int, default=1)
    p_tel.add_argument("--scale", type=float, default=1.0)
    p_tel.add_argument(
        "--node", type=int, default=0, help="node to render (default 0)"
    )
    p_tel.add_argument(
        "--fault-intensity",
        type=float,
        default=0.0,
        dest="fault_intensity",
        help="scale the reference fault regime onto the run (default 0 = clean)",
    )
    p_tel.add_argument("--cpu-th", type=float, default=0.05, dest="cpu_th")
    p_tel.add_argument("--unc-th", type=float, default=0.02, dest="unc_th")
    p_tel.add_argument("--jsonl", default=None, help="write the event stream as JSONL")
    p_tel.add_argument(
        "--metrics", default=None, help="write Prometheus-style text metrics"
    )
    p_tel.set_defaults(fn=_cmd_telemetry)

    p_cmp = sub.add_parser(
        "campaign", help="run the application list under EARGM budget control"
    )
    p_cmp.add_argument("--budget-mj", type=float, default=14.0, dest="budget_mj")
    p_cmp.add_argument("--horizon-s", type=float, default=4500.0, dest="horizon_s")
    p_cmp.add_argument("--scale", type=float, default=1.0)
    p_cmp.add_argument(
        "--accounting", default=None, help="export the accounting DB as JSON"
    )
    p_cmp.set_defaults(fn=_cmd_campaign)

    p_clu = sub.add_parser(
        "cluster",
        help="discrete-event cluster campaign: FCFS+backfill scheduler, "
        "EARDBD aggregation, EARGM actuation",
    )
    p_clu.add_argument("--nodes", type=int, default=8)
    p_clu.add_argument(
        "--node-mix",
        default=None,
        dest="node_mix",
        help="heterogeneous pool as <generation>=<count>[,...], e.g. "
        "skylake=8,graniterapids=8 (generations: skylake, broadwell, "
        "graniterapids); overrides --nodes and arms per-job telemetry",
    )
    p_clu.add_argument("--n-jobs", type=int, default=12, dest="n_jobs")
    p_clu.add_argument("--seed", type=int, default=0, help="trace seed")
    p_clu.add_argument(
        "-p",
        "--policy",
        default="compare",
        help="none|me|me_eufs|me_eufs_regions|compare (default: compare "
        "the paper's three)",
    )
    p_clu.add_argument(
        "--policies",
        default=None,
        help="explicit comma-separated comparison list, e.g. "
        "me_eufs,me_eufs_regions ('monitoring' aliases the no-policy "
        "baseline); overrides -p, first entry is the comparison reference "
        "when 'none' is absent",
    )
    p_clu.add_argument(
        "--interarrival-s",
        type=float,
        default=20.0,
        dest="interarrival_s",
        help="mean job inter-arrival time",
    )
    p_clu.add_argument(
        "--burst",
        type=float,
        default=0.25,
        help="fraction of jobs arriving together at t=0",
    )
    p_clu.add_argument("--scale", type=float, default=1.0)
    p_clu.add_argument(
        "--budget-mj",
        type=float,
        default=None,
        dest="budget_mj",
        help="EARGM energy budget (default: no budget control)",
    )
    p_clu.add_argument("--horizon-s", type=float, default=4500.0, dest="horizon_s")
    p_clu.add_argument(
        "--power-market",
        action="store_true",
        dest="power_market",
        help="run the EARGM power-cap market: jobs bid watts needed vs. "
        "saveable, caps are redistributed each flush interval, capped jobs "
        "descend the uncore ladder before CPU P-states (docs/POLICIES.md)",
    )
    p_clu.add_argument(
        "--budget-w",
        type=float,
        default=None,
        dest="budget_w",
        help="cluster power budget for --power-market in watts "
        "(default: derived as --budget-mj * 1e6 / --horizon-s)",
    )
    p_clu.add_argument(
        "--flush-interval-s",
        type=float,
        default=30.0,
        dest="flush_interval_s",
        help="EARDBD flush period in simulated seconds",
    )
    p_clu.add_argument(
        "--buffer-limit",
        type=int,
        default=256,
        dest="buffer_limit",
        help="EARDBD buffered node reports before drops",
    )
    p_clu.add_argument(
        "--no-backfill", action="store_true", help="pure FCFS (no backfill)"
    )
    p_clu.add_argument(
        "--fault-intensity",
        type=float,
        default=0.0,
        dest="fault_intensity",
        help="scale the reference fault regime onto every job (default 0)",
    )
    p_clu.add_argument("--cpu-th", type=float, default=0.05, dest="cpu_th")
    p_clu.add_argument("--unc-th", type=float, default=0.02, dest="unc_th")
    p_clu.add_argument(
        "--summary", action="store_true", help="omit the per-job table"
    )
    p_clu.add_argument(
        "--accounting",
        default=None,
        help="export the last campaign's accounting DB as JSON (for eacct)",
    )
    p_clu.add_argument("--json", default=None, help="write the report(s) as JSON")
    p_clu.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign from its journal (completed "
        "runs are served from the cache, not recomputed)",
    )
    p_clu.add_argument(
        "--journal-dir",
        default=None,
        dest="journal_dir",
        help="campaign journal directory (default results/.journal)",
    )
    p_clu.set_defaults(fn=_cmd_cluster)

    p_acc = sub.add_parser(
        "eacct", help="query an exported accounting DB (eacct-style)"
    )
    p_acc.add_argument(
        "--db", required=True, help="accounting JSON written by cluster/campaign"
    )
    p_acc.add_argument("--job", type=int, default=None, help="one job id")
    p_acc.add_argument("--workload", default=None, help="filter by workload name")
    p_acc.add_argument("--policy", default=None, help="filter by policy name")
    p_acc.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON instead of a table"
    )
    p_acc.set_defaults(fn=_cmd_eacct)

    p_exp = sub.add_parser("export", help="export a paper table as CSV")
    p_exp.add_argument("number", type=int, help="table number 1-7")
    p_exp.add_argument("-o", "--output", default=None, help="file (default stdout)")
    p_exp.add_argument("--scale", type=float, default=1.0)
    p_exp.set_defaults(fn=_cmd_export)

    p_learn = sub.add_parser(
        "learn",
        help="coefficient learning phase: grid runs -> least-squares fit "
        "-> held-out validation -> save",
    )
    p_learn.add_argument(
        "--node-type",
        default="sd530",
        choices=["sd530", "gpu", "broadwell", "graniterapids"],
        dest="node_type",
        help="node type to fit coefficients for (default sd530); "
        "graniterapids fits the TPMI-backed generation and saves a "
        "backend-qualified table",
    )
    p_learn.add_argument(
        "--grid",
        default="full",
        choices=["full", "coarse"],
        help="measurement grid: full (3 uncore points) or coarse "
        "(endpoints only, ~3x cheaper); both cover every P-state",
    )
    p_learn.add_argument(
        "--kernels",
        default=None,
        help="comma-separated subset of the training battery "
        "(default: the whole battery for the node type)",
    )
    p_learn.add_argument(
        "--out",
        default=None,
        help="coefficients directory (default results/coefficients; "
        "'none' fits without saving)",
    )
    p_learn.add_argument(
        "--validate",
        action="store_true",
        help="replay held-out workloads and refuse to save a table whose "
        "projection error exceeds the threshold",
    )
    p_learn.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum held-out relative projection error (default 0.20)",
    )
    p_learn.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override the grid's workload scale",
    )
    p_learn.add_argument(
        "--jsonl", default=None, help="write the learning telemetry events as JSONL"
    )
    p_learn.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign from its journal (completed "
        "grid points are served from the cache, not recomputed)",
    )
    p_learn.add_argument(
        "--journal-dir",
        default=None,
        dest="journal_dir",
        help="campaign journal directory (default results/.journal)",
    )
    p_learn.set_defaults(fn=_cmd_learn)

    p_serve = sub.add_parser(
        "serve",
        help="persistent EAR service: streaming job submissions over a "
        "unix socket/TCP, incremental telemetry, Prometheus scrape endpoint",
    )
    p_serve.add_argument(
        "--socket",
        default="ear.sock",
        help="unix socket path to listen on (default ear.sock)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="also listen on TCP 127.0.0.1:PORT (default: unix socket only)",
    )
    p_serve.add_argument(
        "--name", default="default", help="service instance name (default 'default')"
    )
    p_serve.add_argument(
        "--n-nodes",
        type=int,
        default=8,
        dest="n_nodes",
        help="nodes per auto-created cluster (default 8)",
    )
    p_serve.add_argument(
        "--policy",
        default="me_eufs",
        choices=["none", "me", "me_eufs"],
        help="default EAR policy for auto-created clusters (default me_eufs)",
    )
    p_serve.add_argument(
        "--budget-mj",
        type=float,
        default=None,
        dest="budget_mj",
        help="EARGM energy budget per horizon in MJ (default: no budget)",
    )
    p_serve.add_argument(
        "--horizon-s",
        type=float,
        default=4500.0,
        dest="horizon_s",
        help="EARGM rolling-horizon length in seconds (default 4500)",
    )
    p_serve.add_argument(
        "--flush-interval-s",
        type=float,
        default=30.0,
        dest="flush_interval_s",
        help="EARDBD flush cadence in simulated seconds (default 30)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        dest="max_pending",
        help="per-cluster ingress bound; excess submissions are rejected "
        "with a backpressure error (default 1024)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        dest="max_inflight",
        help="concurrent blocking dispatches into the worker pool (default 2)",
    )
    p_serve.add_argument(
        "--no-journal",
        action="store_true",
        dest="no_journal",
        help="disable the write-ahead campaign journal",
    )
    p_serve.add_argument(
        "--no-fsync",
        action="store_true",
        dest="no_fsync",
        help="journal without fsync-per-record (faster, weaker crash safety)",
    )
    p_serve.add_argument(
        "--journal-dir",
        default=None,
        dest="journal_dir",
        help="campaign journal directory (default results/.journal)",
    )
    p_serve.add_argument(
        "--resume",
        action="store_true",
        help="extend the previous journal for this service name; completed "
        "runs are served from the run cache, not re-simulated",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    def _client_flags(p) -> None:
        p.add_argument(
            "--socket",
            default="ear.sock",
            help="unix socket of the service (default ear.sock)",
        )
        p.add_argument(
            "--port",
            type=int,
            default=None,
            help="TCP port of the service (overrides --socket)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=30.0,
            help="client I/O timeout in seconds (default 30)",
        )

    p_submit = sub.add_parser(
        "submit", help="stream job submissions to a running `repro-ear serve`"
    )
    _client_flags(p_submit)
    p_submit.add_argument(
        "-w", "--workload", required=True, help="workload name (see `repro-ear list`)"
    )
    p_submit.add_argument(
        "-p",
        "--policy",
        default=None,
        choices=["none", "me", "me_eufs"],
        help="EAR policy for the target cluster (only on first submission "
        "to a cluster; default: the server's --policy)",
    )
    p_submit.add_argument(
        "--seed", type=int, default=1, help="simulation seed (default 1)"
    )
    p_submit.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="iteration-count scale for the workload (default 1.0)",
    )
    p_submit.add_argument(
        "--count",
        type=int,
        default=1,
        help="submit N copies with consecutive seeds (default 1)",
    )
    p_submit.add_argument(
        "--cluster",
        default="default",
        help="target cluster name; unknown names auto-create a cluster",
    )
    p_submit.add_argument(
        "--submit-s",
        type=float,
        default=None,
        dest="submit_s",
        help="pin the arrival on the simulation clock (default: now)",
    )
    p_submit.add_argument(
        "--tag",
        type=int,
        default=None,
        help="client-side ordering key; pending jobs are admitted in "
        "(submit_s, tag) order",
    )
    p_submit.set_defaults(fn=_cmd_submit)

    p_svc_status = sub.add_parser(
        "status", help="query (or drain/stop) a running `repro-ear serve`"
    )
    _client_flags(p_svc_status)
    p_svc_status.add_argument(
        "--tail",
        type=int,
        default=0,
        metavar="N",
        help="print the last N telemetry event lines instead of the status",
    )
    p_svc_status.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus exposition text instead of the status",
    )
    p_svc_status.add_argument(
        "--drain",
        action="store_true",
        help="block until all submitted jobs have simulated, then report",
    )
    p_svc_status.add_argument(
        "--stop",
        action="store_true",
        help="request a graceful shutdown (drain, journal trailer, exit)",
    )
    p_svc_status.add_argument(
        "--json", action="store_true", help="print the raw status payload as JSON"
    )
    p_svc_status.set_defaults(fn=_cmd_status)

    return parser


def _escape_cell(text: str) -> str:
    """Make a help string safe inside a one-line markdown table cell."""
    return " ".join(text.split()).replace("|", "\\|")


def _invocation(action: argparse.Action) -> str:
    """Render one argument the way a user would type it."""
    if not action.option_strings:
        return str(action.metavar or action.dest)
    forms = ", ".join(action.option_strings)
    if action.nargs == 0:
        return forms
    metavar = action.metavar or action.dest.upper()
    return f"{forms} {metavar}"


def _default_cell(action: argparse.Action) -> str:
    if action.required:
        return "required"
    if isinstance(action, (argparse._StoreTrueAction, argparse._StoreFalseAction)):
        return "off" if action.default is False else "on"
    if action.default is None or action.default is argparse.SUPPRESS:
        return "—"
    return f"`{action.default}`"


def _argument_table(actions: list[argparse.Action]) -> list[str]:
    rows = [
        a
        for a in actions
        if not isinstance(a, (argparse._HelpAction, argparse._SubParsersAction))
    ]
    if not rows:
        return ["(no arguments)", ""]
    lines = ["| argument | default | description |", "| --- | --- | --- |"]
    for a in rows:
        choices = ""
        if a.choices:
            choices = " one of: " + ", ".join(f"`{c}`" for c in a.choices) + "."
        lines.append(
            f"| `{_escape_cell(_invocation(a))}` "
            f"| {_escape_cell(_default_cell(a))} "
            f"| {_escape_cell(a.help or '')}{choices} |"
        )
    lines.append("")
    return lines


def dump_docs(parser: argparse.ArgumentParser | None = None) -> str:
    """Render the whole CLI as markdown (the source of ``docs/CLI.md``).

    Walks the argparse tree directly instead of using
    ``format_usage``/``format_help``, whose line wrapping depends on
    the invoking terminal's width — generated docs must be byte-stable.
    """
    if parser is None:
        parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    help_of = {a.dest: (a.help or "") for a in sub._choices_actions}
    lines = [
        "<!-- Generated by `repro-ear --dump-docs` "
        "(`python -m repro.cli --dump-docs`). -->",
        "<!-- Do not edit by hand; CI fails when this file is stale. -->",
        "",
        f"# `{parser.prog}` command reference",
        "",
        str(parser.description),
        "",
        "Global options (before the subcommand):",
        "",
    ]
    lines += _argument_table(parser._actions)
    lines += ["Subcommands:", ""]
    for name in sub.choices:
        lines.append(f"- [`{parser.prog} {name}`](#repro-ear-{name}) — {help_of[name]}")
    lines.append("")
    for name, subparser in sub.choices.items():
        lines += [f"## `{parser.prog} {name}`", "", _escape_cell(help_of[name]) + ".", ""]
        lines += _argument_table(subparser._actions)
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-ear`` console script.

    Ctrl-C (and SIGTERM, which is converted to the same path) exits
    with the conventional code 130 and no traceback; journaling
    subcommands print a resume hint, since their write-ahead journals
    are fsync'd per record and therefore already safe on disk.
    """
    if argv is None:
        argv = sys.argv[1:]
    # --dump-docs has to short-circuit: the subcommand is otherwise required.
    if argv and argv[0] == "--dump-docs":
        print(dump_docs(), end="")
        return 0
    args = build_parser().parse_args(argv)
    if args.jobs == 0:
        args.jobs = os.cpu_count() or 1
    if args.jobs < 0:
        raise SystemExit("--jobs must be >= 0")
    if args.retries < 1:
        raise SystemExit("--retries must be >= 1")
    if args.job_timeout is not None and args.job_timeout <= 0:
        raise SystemExit("--timeout must be positive")
    _configure_execution(args)
    import signal

    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # not the main thread (embedded use)
        previous = None
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        if _RESUME_HINT:
            print(_RESUME_HINT, file=sys.stderr)
        sys.stdout.flush()
        sys.stderr.flush()
        # Skip interpreter thread shutdown: joining the executor threads
        # of an abandoned hung worker can block indefinitely or spew
        # spurious tracebacks over the clean exit message.
        os._exit(130)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


if __name__ == "__main__":
    sys.exit(main())
