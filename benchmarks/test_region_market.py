"""Extension bench: region tables + the power-cap market, cluster scale.

The acceptance scenario of docs/POLICIES.md: one seeded trace replayed
under monitoring, global eUFS and the region-based variant, with the
EARGM power market armed at a binding budget.  Asserted claims: the
market keeps granted caps within the budget at every interval, and
``me_eufs_regions`` still beats the monitoring baseline on cluster
energy while capped.
"""

from repro.cluster.market import MarketConfig
from repro.cluster.report import compare_cluster_policies, render_comparison
from repro.cluster.scheduler import ClusterConfig
from repro.cluster.traces import TraceConfig, generate_trace
from repro.experiments.runner import standard_configs

from .conftest import write_artefact

BUDGET_W = 1500.0


def test_region_market_campaign(benchmark, results_dir, scale):
    def run():
        trace = generate_trace(TraceConfig(n_jobs=12, seed=0, scale=scale))
        configs = standard_configs(regions=True)
        return compare_cluster_policies(
            trace,
            ClusterConfig(
                n_nodes=8,
                telemetry=True,
                market=MarketConfig(budget_w=BUDGET_W),
            ),
            {
                "monitoring": configs["none"],
                "me_eufs": configs["me_eufs"],
                "me_eufs_regions": configs["me_eufs_regions"],
            },
        )

    campaigns = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [render_comparison(campaigns, reference="monitoring")]
    for name, campaign in campaigns.items():
        m = campaign.report.market
        if m is not None and m.n_jobs:
            lines.append(
                f"{name}: {m.budget_w:.0f} W budget, peak grant "
                f"{m.peak_granted_w:.0f} W, {m.n_capped_jobs}/{m.n_jobs} "
                f"jobs capped over {len(m.intervals)} intervals"
            )
    write_artefact(results_dir, "region_market.txt", "\n".join(lines) + "\n")

    monitoring = campaigns["monitoring"]
    regions = campaigns["me_eufs_regions"]

    # conservation: every interval of every policy-bearing campaign
    # stays within the budget (the monitoring baseline is never capped,
    # so its market records no admissions).
    for name in ("me_eufs", "me_eufs_regions"):
        market = campaigns[name].report.market
        assert market is not None and market.n_jobs > 0
        for interval in market.intervals:
            if interval.n_jobs > 0:
                assert interval.granted_w <= interval.budget_w + 1e-9
        # the budget binds for this trace: someone got capped.
        assert market.n_capped_jobs > 0

    # and the optimisation still pays under the cap.
    assert regions.energy_saving_vs(monitoring) > 0.0
    # regions never lose to the global policy beyond noise: identical
    # decisions on the (single-phase) corpus, by the fallback contract.
    assert regions.report.total_energy_j <= (
        campaigns["me_eufs"].report.total_energy_j * 1.01
    )
