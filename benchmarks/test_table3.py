"""Table III: kernel savings — the paper's headline kernel result."""

from repro.experiments import paper_data, table3_kernel_savings
from repro.experiments.report import format_table, pct

from .conftest import write_artefact


def test_table3(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table3_kernel_savings(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )

    def cell(r, cfg, metric):
        paper = paper_data.TABLE3[r["kernel"]][cfg][metric]
        return f"{pct(r[cfg][metric])} ({pct(paper)})"

    rendered = format_table(
        "Table III: kernel evaluation, ME / ME+eU vs nominal "
        "(paper values in parentheses)",
        [
            "kernel",
            "pen ME",
            "pen eU",
            "pow ME",
            "pow eU",
            "energy ME",
            "energy eU",
        ],
        [
            [
                r["kernel"],
                cell(r, "me", "time_penalty"),
                cell(r, "me_eufs", "time_penalty"),
                cell(r, "me", "power_saving"),
                cell(r, "me_eufs", "power_saving"),
                cell(r, "me", "energy_saving"),
                cell(r, "me_eufs", "energy_saving"),
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table3.txt", rendered)

    for r in rows:
        # explicit UFS never loses to plain ME on energy...
        assert r["me_eufs"]["energy_saving"] >= r["me"]["energy_saving"] - 0.01
        # ...and stays within the combined threshold budget
        # (cpu_policy_th 5 % + unc_policy_th 2 %)
        assert r["me_eufs"]["time_penalty"] < 0.07
    # the CUDA and OpenMP kernels show the clearest wins (paper: 5-11 %);
    # at reduced scale the descent transient dominates short kernels, so
    # the magnitude checks only run near full length.
    by_name = {r["kernel"]: r for r in rows}
    assert by_name["BT.CUDA.D"]["me_eufs"]["energy_saving"] > 0.05
    if scale >= 0.7:
        assert by_name["BT-MZ.C"]["me_eufs"]["power_saving"] > 0.03
