"""Figure 3: BQCD under different unc_policy_th values."""

from repro.experiments import figure3_bqcd
from repro.experiments.report import format_figure_series

from .conftest import write_artefact


def test_figure3(benchmark, results_dir, scale, seeds):
    series = benchmark.pedantic(
        lambda: figure3_bqcd(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    write_artefact(
        results_dir,
        "figure3.txt",
        format_figure_series(
            "Figure 3: BQCD, min_energy (cpu_th 3%) with eUFS at "
            "unc_th 1/2/3 %", series
        ),
    )
    by_cfg = {s["config"]: s for s in series}
    # The DVFS stage alone does nothing for BQCD (paper: "the policy
    # doesn't reduce core frequency, results for ME show no saving")
    assert abs(by_cfg["me"]["energy_saving"]) < 0.01
    # Every eUFS variant saves power...
    for th in (1, 2, 3):
        assert by_cfg[f"me_eufs_{th}"]["power_saving"] > 0.01
    # ...and power saving scales better than time penalty (the paper's
    # note on figure 3)
    for th in (1, 2, 3):
        s = by_cfg[f"me_eufs_{th}"]
        assert s["power_saving"] > s["time_penalty"]
    # deeper threshold -> deeper descent
    assert by_cfg["me_eufs_3"]["avg_imc_ghz"] <= by_cfg["me_eufs_1"]["avg_imc_ghz"] + 0.01
