"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at full
scale (the paper's own run lengths and three-run averaging), renders it
with the paper's published numbers side by side, and writes the
artefact under ``results/``.  ``REPRO_BENCH_SCALE`` (default 1.0) can
shrink run lengths for smoke-testing the harness itself.

In-process run caching (:mod:`repro.experiments.runner`) means shared
baselines are executed once per session even though several benches
need them.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seeds() -> tuple[int, ...]:
    """The paper's methodology: three runs, averaged."""
    return (1, 2, 3)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seeds() -> tuple[int, ...]:
    return bench_seeds()


def write_artefact(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one rendered table/figure and echo it to the log."""
    path = results_dir / name
    path.write_text(text)
    print(text)
