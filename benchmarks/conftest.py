"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at full
scale (the paper's own run lengths and three-run averaging), renders it
with the paper's published numbers side by side, and writes the
artefact under ``results/``.  ``REPRO_BENCH_SCALE`` (default 1.0) can
shrink run lengths for smoke-testing the harness itself.

Execution goes through :mod:`repro.experiments.parallel`: shared
baselines are executed once per session, every run is persisted to
``results/.cache/`` (so a second full regeneration performs zero
simulations), and cache misses fan out over ``REPRO_BENCH_JOBS``
worker processes (default: all cores).  ``REPRO_BENCH_NO_CACHE=1``
forces every simulation to execute.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.parallel import configure_defaults

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", os.cpu_count() or 1))


def pytest_configure(config) -> None:
    use_cache = os.environ.get("REPRO_BENCH_NO_CACHE", "") != "1"
    configure_defaults(
        jobs=bench_jobs(),
        cache_dir=RESULTS_DIR / ".cache" if use_cache else None,
        use_cache=use_cache,
    )


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seeds() -> tuple[int, ...]:
    """The paper's methodology: three runs, averaged."""
    return (1, 2, 3)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seeds() -> tuple[int, ...]:
    return bench_seeds()


def write_artefact(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one rendered table/figure and echo it to the log."""
    path = results_dir / name
    path.write_text(text)
    print(text)
