"""Figure 8: DUMSES and AFiD — the two thresholds as a user dial."""

from repro.experiments import figure8_dumses_afid
from repro.experiments.report import format_figure_series

from .conftest import write_artefact


def test_figure8(benchmark, results_dir, scale, seeds):
    data = benchmark.pedantic(
        lambda: figure8_dumses_afid(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    out = [
        format_figure_series(f"Figure 8: {name} (cpu_th 3%/5%, unc_th 2%)", series)
        for name, series in data.items()
    ]
    write_artefact(results_dir, "figure8.txt", "\n".join(out))

    for name, series in data.items():
        by_cfg = {s["config"]: s for s in series}
        # the looser DVFS threshold buys more saving at more penalty
        assert (
            by_cfg["me_5"]["energy_saving"] >= by_cfg["me_3"]["energy_saving"] - 0.005
        ), name
        assert (
            by_cfg["me_5"]["avg_cpu_ghz"] <= by_cfg["me_3"]["avg_cpu_ghz"] + 0.01
        ), name
        # at both thresholds, adding eUFS helps
        for th in (3, 5):
            assert (
                by_cfg[f"me_eufs_{th}"]["energy_saving"]
                >= by_cfg[f"me_{th}"]["energy_saving"] - 0.005
            ), (name, th)
