"""Table IV: kernel average CPU and IMC frequencies per configuration."""

from repro.experiments import paper_data, table4_kernel_frequencies
from repro.experiments.report import format_table, ghz

from .conftest import write_artefact


def test_table4(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table4_kernel_frequencies(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )

    def cell(r, cfg, dom):
        paper = paper_data.TABLE4[r["kernel"]][cfg][dom]
        return f"{ghz(r[cfg][dom])} ({paper:.2f})"

    rendered = format_table(
        "Table IV: kernel avg CPU and IMC frequencies "
        "(paper values in parentheses)",
        ["kernel", "none cpu", "none imc", "ME cpu", "ME imc", "eU cpu", "eU imc"],
        [
            [
                r["kernel"],
                cell(r, "none", "cpu"),
                cell(r, "none", "imc"),
                cell(r, "me", "cpu"),
                cell(r, "me", "imc"),
                cell(r, "me_eufs", "cpu"),
                cell(r, "me_eufs", "imc"),
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table4.txt", rendered)

    by_name = {r["kernel"]: r for r in rows}
    # OpenMP kernels: CPU stays nominal, uncore drops ~0.4 GHz (the
    # average includes the descent transient, so the magnitude check
    # only runs near full length)
    for kernel in ("BT-MZ.C", "SP-MZ.C"):
        assert by_name[kernel]["me_eufs"]["cpu"] > 2.25
        if scale >= 0.7:
            assert by_name[kernel]["me_eufs"]["imc"] < 2.15
    # LU.CUDA: HW keeps the uncore up, explicit UFS halves it
    assert by_name["LU.CUDA.D"]["me"]["imc"] > 2.3
    assert by_name["LU.CUDA.D"]["me_eufs"]["imc"] < 2.0
    # DGEMM: both CPU and uncore already lowered by the hardware
    assert by_name["DGEMM"]["none"]["cpu"] < 2.3
    assert by_name["DGEMM"]["none"]["imc"] < 2.1
