"""Table I: kernel metrics under min_energy with hardware IMC selection."""

from repro.experiments import paper_data, table1_kernel_metrics
from repro.experiments.report import format_table, ghz

from .conftest import write_artefact


def test_table1(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table1_kernel_metrics(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )
    rendered = format_table(
        "Table I: kernels under min_energy_to_solution with HW IMC selection "
        "(paper values in parentheses)",
        ["kernel", "CPI", "GB/s", "CPU GHz", "IMC GHz"],
        [
            [
                r["kernel"],
                f"{r['cpi']:.2f} ({paper_data.TABLE1[r['kernel']]['cpi']:.2f})",
                f"{r['gbs']:.1f} ({paper_data.TABLE1[r['kernel']]['gbs']:.1f})",
                f"{ghz(r['cpu_ghz'])} ({paper_data.TABLE1[r['kernel']]['cpu_ghz']:.2f})",
                f"{ghz(r['imc_ghz'])} ({paper_data.TABLE1[r['kernel']]['imc_ghz']:.2f})",
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table1.txt", rendered)

    # Shape assertions: the hardware picks the max uncore for both
    # kernels despite their very different profiles (the paper's
    # motivating observation).
    by_name = {r["kernel"]: r for r in rows}
    assert by_name["BT-MZ.C.mpi"]["imc_ghz"] > 2.3
    assert by_name["LU.D.mpi"]["imc_ghz"] > 2.3
    assert by_name["LU.D.mpi"]["cpi"] > 2 * by_name["BT-MZ.C.mpi"]["cpi"]
