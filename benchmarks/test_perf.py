"""Engine benchmark: scalar reference vs. batched numpy kernel.

Times both inner loops on the cases that bracket the kernel's two
paths — a single-node kernel, the paper's 16-node GROMACS(II) case
(fully vectorizable: no EARL, no telemetry), and a coarse pinned
learning grid like the coefficient-learning phase submits — and writes
``results/BENCH_engine.json`` with wall times, iteration rates and
speedups.

Timing is honest: each case calls :func:`repro.sim.engine.run_workload`
directly with ``time.perf_counter`` around it, bypassing the experiment
pool and its run cache entirely.  Each (case, engine) pair is run once
per seed and summed — the engines are deterministic, so seeds vary the
work, not the noise floor.

The CI gate (``REPRO_BENCH_SCALE=0.05``) asserts the batched kernel is
never slower on the 16-node case; the full-scale run additionally
asserts the ISSUE target of a >= 5x speedup there.  Result equivalence
is asserted at the same 1e-9 relative tolerance as the dedicated gate
in ``tests/sim/test_kernel_equivalence.py``.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.ear.config import EarConfig
from repro.hw.node import GRANITE_RAPIDS_NODE
from repro.sim.engine import run_workload
from repro.workloads import applications, kernels

from .conftest import write_artefact

REL_TOL = 1e-9
ENGINES = ("scalar", "batched")

# Fields of a per-node result that must agree between engines.
_NODE_FIELDS = (
    "dc_energy_j",
    "pck_energy_j",
    "seconds",
    "avg_cpu_freq_ghz",
    "avg_imc_freq_ghz",
    "cpi",
    "gbs",
)


def _check_equivalent(scalar, batched):
    assert batched.time_s == pytest.approx(scalar.time_s, rel=REL_TOL)
    assert len(batched.nodes) == len(scalar.nodes)
    for ns, nb in zip(scalar.nodes, batched.nodes):
        for field in _NODE_FIELDS:
            assert getattr(nb, field) == pytest.approx(
                getattr(ns, field), rel=REL_TOL, abs=1e-30
            ), field


def _iterations(wl) -> int:
    return sum(n for _profile, n in wl.phases)


def _time_case(wl, seeds, *, ear_config=None, pins=((None, None),)):
    """Run one case under both engines; return the per-engine record."""
    record = {}
    results = {}
    for engine in ENGINES:
        start = time.perf_counter()
        runs = [
            run_workload(
                wl,
                ear_config=ear_config,
                seed=s,
                pin_cpu_ghz=cpu,
                pin_uncore_ghz=unc,
                engine=engine,
            )
            for cpu, unc in pins
            for s in seeds
        ]
        wall = time.perf_counter() - start
        n_runs = len(runs)
        iters = _iterations(wl) * n_runs
        record[engine] = {
            "wall_s": wall,
            "runs": n_runs,
            "iterations": iters,
            "iterations_per_s": iters / wall if wall > 0 else float("inf"),
        }
        results[engine] = runs
    for rs, rb in zip(results["scalar"], results["batched"]):
        _check_equivalent(rs, rb)
    record["speedup"] = record["scalar"]["wall_s"] / record["batched"]["wall_s"]
    return record


def test_engine_speedup(benchmark, results_dir, scale, seeds):
    def run():
        single = kernels.bt_mz_c_openmp().scaled_iterations(scale)
        sixteen = applications.gromacs_lignocellulose().scaled_iterations(scale)
        # A coarse corner of the learning phase's pinned grid: the
        # engines run with EAR disabled and both clocks pinned, the
        # shape the coefficient-learning subsystem submits in bulk.
        grid_wl = kernels.bt_mz_c_openmp().scaled_iterations(scale * 0.5)
        grid = [
            (cpu, unc)
            for cpu in (2.4, 2.0)
            for unc in (2.4, 1.8)
        ]
        return {
            "scale": scale,
            "seeds": list(seeds),
            "cases": {
                "single_node": {
                    "workload": single.name,
                    "n_nodes": single.n_nodes,
                    "note": "single node, no EAR (vectorized path)",
                    **_time_case(single, seeds),
                },
                "single_node_ear": {
                    "workload": single.name,
                    "n_nodes": single.n_nodes,
                    "note": "single node, EAR policy (chunk-committed path)",
                    **_time_case(single, seeds, ear_config=EarConfig()),
                },
                "16_node": {
                    "workload": sixteen.name,
                    "n_nodes": sixteen.n_nodes,
                    "note": "paper's 16-node GROMACS(II), no EAR (the >=5x target)",
                    **_time_case(sixteen, seeds),
                },
                "learning_grid": {
                    "workload": grid_wl.name,
                    "n_nodes": grid_wl.n_nodes,
                    "note": "coarse pinned (cpu, uncore) learning grid",
                    "grid_points": len(grid),
                    **_time_case(grid_wl, seeds[:1], pins=grid),
                },
                # The non-MSR uncore backends add per-die domain loops
                # and a different write path; the batched kernel must
                # keep its edge on both.
                "16_node_sysfs": {
                    "workload": sixteen.name,
                    "n_nodes": sixteen.n_nodes,
                    "backend": "sysfs",
                    "note": "16-node case on the legacy per-die sysfs backend",
                    **_time_case(
                        sixteen.retargeted(
                            dataclasses.replace(
                                sixteen.node_config,
                                uncore_backend="sysfs",
                                dies_per_socket=2,
                            )
                        ),
                        seeds,
                    ),
                },
                "16_node_tpmi": {
                    "workload": sixteen.name,
                    "n_nodes": sixteen.n_nodes,
                    "backend": "tpmi",
                    "note": "16-node case on Granite Rapids TPMI (per-die + ELC)",
                    **_time_case(
                        sixteen.retargeted(GRANITE_RAPIDS_NODE), seeds
                    ),
                },
            },
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artefact(
        results_dir, "BENCH_engine.json", json.dumps(report, indent=2) + "\n"
    )

    # The CI gate: batched must never lose on the headline cases —
    # the MSR path and both non-MSR backends alike.
    for case in ("16_node", "16_node_sysfs", "16_node_tpmi"):
        headline = report["cases"][case]
        assert headline["speedup"] >= 1.0, (
            f"batched slower than scalar on {case}: {headline['speedup']:.2f}x"
        )
        # The ISSUE target only binds at full scale — tiny smoke runs
        # sit in fixed per-run overhead and understate the asymptotic
        # speedup.
        if scale >= 1.0:
            assert headline["speedup"] >= 5.0, (
                f"{case} full-scale speedup {headline['speedup']:.2f}x < 5x target"
            )
