"""Figure 7: HPCG and POP — ME vs ME+eU at 5 %/2 %."""

from repro.experiments import figure7_hpcg_pop
from repro.experiments.report import format_figure_series

from .conftest import write_artefact


def test_figure7(benchmark, results_dir, scale, seeds):
    data = benchmark.pedantic(
        lambda: figure7_hpcg_pop(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    out = [
        format_figure_series(f"Figure 7: {name} (cpu_th 5%, unc_th 2%)", series)
        for name, series in data.items()
    ]
    write_artefact(results_dir, "figure7.txt", "\n".join(out))

    for name, series in data.items():
        by_cfg = {s["config"]: s for s in series}
        # memory-bound: ME itself finds real savings via DVFS
        assert by_cfg["me"]["energy_saving"] > 0.01, name
        # eUFS adds on top without breaching the combined budget
        assert (
            by_cfg["me_eufs"]["energy_saving"]
            >= by_cfg["me"]["energy_saving"] - 0.005
        ), name
        assert by_cfg["me_eufs"]["time_penalty"] < 0.08, name

    hpcg = {s["config"]: s for s in data["HPCG"]}
    # HPCG: the guard keeps the uncore within ~0.1-0.2 GHz of max
    assert hpcg["me_eufs"]["avg_imc_ghz"] > 2.2
    pop = {s["config"]: s for s in data["POP"]}
    # POP: a deeper descent is tolerated (paper: 2.35 -> 2.06)
    assert pop["me_eufs"]["avg_imc_ghz"] < hpcg["me_eufs"]["avg_imc_ghz"] + 0.05
