"""Table II: single-node kernel characteristics at nominal frequency."""

import pytest

from repro.experiments import paper_data, table2_kernel_characteristics
from repro.experiments.report import format_table

from .conftest import write_artefact


def test_table2(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table2_kernel_characteristics(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )
    rendered = format_table(
        "Table II: single-node kernels (paper values in parentheses)",
        ["kernel", "time (s)", "CPI", "GB/s", "DC power (W)"],
        [
            [
                r["kernel"],
                f"{r['time_s']:.0f} ({paper_data.TABLE2[r['kernel']]['time_s']})",
                f"{r['cpi']:.2f} ({paper_data.TABLE2[r['kernel']]['cpi']:.2f})",
                f"{r['gbs']:.2f} ({paper_data.TABLE2[r['kernel']]['gbs']})",
                f"{r['dc_power_w']:.0f} ({paper_data.TABLE2[r['kernel']]['dc_power_w']})",
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table2.txt", rendered)

    for r in rows:
        expected = paper_data.TABLE2[r["kernel"]]
        assert r["cpi"] == pytest.approx(expected["cpi"], rel=0.1), r["kernel"]
        assert r["dc_power_w"] == pytest.approx(
            expected["dc_power_w"], rel=0.1
        ), r["kernel"]
        if scale == 1.0:
            assert r["time_s"] == pytest.approx(expected["time_s"], rel=0.1)
