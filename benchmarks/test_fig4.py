"""Figure 4: BT-MZ with unc_policy_th swept 0/1/2 % at cpu_th 3 %."""

from repro.experiments import figure4_btmz
from repro.experiments.report import format_figure_series

from .conftest import write_artefact


def test_figure4(benchmark, results_dir, scale, seeds):
    series = benchmark.pedantic(
        lambda: figure4_btmz(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    write_artefact(
        results_dir,
        "figure4.txt",
        format_figure_series(
            "Figure 4: BT-MZ, min_energy (cpu_th 3%) with eUFS at "
            "unc_th 0/1/2 %", series
        ),
    )
    by_cfg = {s["config"]: s for s in series}
    # Even unc_th = 0 % saves power without slowing the iteration
    # (the paper's headline observation for this figure)
    zero = by_cfg["me_eufs_0"]
    assert zero["power_saving"] > 0.005
    assert zero["time_penalty"] < 0.015
    # monotone: larger threshold -> more power saving, lower uncore
    assert by_cfg["me_eufs_2"]["power_saving"] >= zero["power_saving"] - 0.003
    assert by_cfg["me_eufs_2"]["avg_imc_ghz"] <= zero["avg_imc_ghz"] + 0.01
    # the CPU clock never moves for BT-MZ
    for s in series:
        assert s["avg_cpu_ghz"] > 2.3
