"""Table VI: application average CPU and IMC frequencies."""

from repro.experiments import paper_data, table6_application_frequencies
from repro.experiments.report import format_table, ghz

from .conftest import write_artefact


def test_table6(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table6_application_frequencies(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )

    def cell(r, cfg, dom):
        paper = paper_data.TABLE6[r["application"]][cfg][dom]
        return f"{ghz(r[cfg][dom])} ({paper:.2f})"

    rendered = format_table(
        "Table VI: application avg CPU and IMC frequencies "
        "(paper values in parentheses)",
        ["application", "none cpu", "none imc", "ME cpu", "ME imc", "eU cpu", "eU imc"],
        [
            [
                r["application"],
                cell(r, "none", "cpu"),
                cell(r, "none", "imc"),
                cell(r, "me", "cpu"),
                cell(r, "me", "imc"),
                cell(r, "me_eufs", "cpu"),
                cell(r, "me_eufs", "imc"),
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table6.txt", rendered)

    by_name = {r["application"]: r for r in rows}
    # CPU-bound class: DVFS leaves the clock at nominal
    for app in ("BQCD", "BT-MZ"):
        assert by_name[app]["me"]["cpu"] > 2.3, app
    # memory-bound class: DVFS cuts the clock
    for app in ("HPCG", "POP", "DUMSES", "AFiD"):
        assert by_name[app]["me"]["cpu"] < 2.3, app
    # eUFS lowers the uncore below the no-policy reference everywhere
    for r in rows:
        assert r["me_eufs"]["imc"] < r["none"]["imc"] - 0.03, r["application"]
    # HPCG's guard keeps its uncore nearly at max (2.29 in the paper)
    assert by_name["HPCG"]["me_eufs"]["imc"] > 2.2
    # GROMACS(II): the hardware itself sinks the uncore once pinned
    assert by_name["GROMACS(II)"]["me"]["imc"] < 1.7
