"""Extension bench: the paper's claim at cluster scale.

The paper's tables are per-job.  This bench replays one seeded
multi-job trace on a simulated cluster (FCFS + conservative backfill,
EARDBD aggregation, shared accounting) under the three standard
configurations and renders the campaign comparison: cluster energy,
makespan, utilisation and queue wait — the question a site operator
would actually ask of explicit UFS.
"""

from repro.cluster.report import compare_cluster_policies, render_comparison
from repro.cluster.scheduler import ClusterConfig
from repro.cluster.traces import TraceConfig, generate_trace
from repro.experiments.runner import standard_configs

from .conftest import write_artefact


def test_cluster_campaign_comparison(benchmark, results_dir, scale):
    def run():
        trace = generate_trace(TraceConfig(n_jobs=14, seed=0, scale=scale))
        return compare_cluster_policies(
            trace,
            ClusterConfig(n_nodes=8, telemetry=True),
            standard_configs(),
        )

    campaigns = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artefact(
        results_dir, "cluster_campaign.txt", render_comparison(campaigns)
    )

    none, me_eufs = campaigns["none"], campaigns["me_eufs"]
    # the headline: explicit UFS still pays once jobs contend for
    # nodes, at a bounded scheduling cost
    assert me_eufs.energy_saving_vs(none) > 0.0
    assert me_eufs.makespan_penalty_vs(none) < 0.10
    # and the reporting pipeline lost nothing on the way to eacct
    for campaign in campaigns.values():
        assert campaign.report.eardbd.reconciles_with(campaign.accounting)
