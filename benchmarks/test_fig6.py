"""Figure 6: GROMACS(II) — ME vs ME+eU at 5 %/2 %."""

from repro.experiments import figure6_gromacs2
from repro.experiments.report import format_figure_series

from .conftest import write_artefact


def test_figure6(benchmark, results_dir, scale, seeds):
    series = benchmark.pedantic(
        lambda: figure6_gromacs2(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    write_artefact(
        results_dir,
        "figure6.txt",
        format_figure_series(
            "Figure 6: GROMACS(II), min_energy (cpu_th 5%, unc_th 2%)", series
        ),
    )
    by_cfg = {s["config"]: s for s in series}
    # At 640 ranks the HW itself sinks the uncore once EAR pins the
    # clock — plain ME already shows the large saving...
    assert by_cfg["me"]["power_saving"] > 0.05
    assert by_cfg["me"]["avg_imc_ghz"] < 1.8
    # ...and eUFS settles at (or slightly below) the HW's selection,
    # matching the paper's "EAR's selection has been the same as the
    # hardware's" for this input.
    assert (
        by_cfg["me_eufs"]["avg_imc_ghz"] <= by_cfg["me"]["avg_imc_ghz"] + 0.05
    )
    assert by_cfg["me_eufs"]["energy_saving"] >= by_cfg["me"]["energy_saving"] - 0.015
