"""Ablation benches for the design choices DESIGN.md calls out.

The paper states several choices without full quantitative backing
("we have done a pre-evaluation of the proposal (not included in the
paper)"); these benches supply the missing evidence on the simulated
testbed:

* moving only the **maximum** uncore limit vs pinning min = max,
* the AVX512-aware model vs the default model on DGEMM,
* the 15 % signature-change threshold,
* min_time_to_solution with the eUFS extension (the paper's future
  work).
"""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.report import format_table, ghz, pct
from repro.experiments.runner import compare, run_averaged
from repro.sim.engine import run_workload
from repro.workloads.applications import hpcg
from repro.workloads.generator import synthetic_workload
from repro.workloads.kernels import bt_mz_c_openmp, dgemm_mkl

from .conftest import write_artefact


def test_ablation_imc_limit_strategy(benchmark, results_dir, scale, seeds):
    """Max-only vs pinned (min = max) uncore limits.

    The paper chose to "just move the maximum uncore frequency" so the
    hardware keeps room to react to phase changes.  On a steady-state
    workload both end at the same place; the pinned variant however
    removes the floor-to-ceiling range.  This bench documents that the
    steady-state savings are equivalent, i.e. the paper's choice costs
    nothing while retaining flexibility.
    """

    def run():
        wl = bt_mz_c_openmp()
        return {
            "max_only": compare(
                wl, {"x": EarConfig(move_imc_min=False)}, seeds=seeds, scale=scale
            )["x"],
            "pinned": compare(
                wl, {"x": EarConfig(move_imc_min=True)}, seeds=seeds, scale=scale
            )["x"],
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        "Ablation: IMC limit strategy on BT-MZ.C (max-only vs min=max)",
        ["strategy", "time pen", "power save", "energy save", "imc GHz"],
        [
            [
                name,
                pct(c.time_penalty),
                pct(c.power_saving),
                pct(c.energy_saving),
                ghz(c.result.avg_imc_freq_ghz),
            ]
            for name, c in res.items()
        ],
    )
    write_artefact(results_dir, "ablation_imc_limits.txt", rendered)
    assert res["max_only"].energy_saving == pytest.approx(
        res["pinned"].energy_saving, abs=0.02
    )


def test_ablation_avx512_model(benchmark, results_dir, scale, seeds):
    """The paper's new model vs the 2020 default model on DGEMM.

    The licence clamp matters most when a policy considers frequencies
    *above* the licence point: ``min_time`` with the default model
    climbs an all-AVX512 kernel toward turbo — predicted speedup the
    silicon cannot deliver, so it burns power for nothing.  The AVX512
    model "captures the fact that AVX512 instructions will not take
    benefit of higher CPU frequencies" (paper section V-A) and stays.
    """

    def run():
        # A compute-dense all-AVX512 kernel (low traffic): without the
        # licence clamp its low-TPI signature looks like a perfect
        # frequency-scaler to the default model.
        wl = synthetic_workload(
            name="avx-dense",
            node_config=dgemm_mkl().node_config,
            core_share=0.95,
            unc_share=0.02,
            mem_share=0.02,
            vpi=1.0,
            n_iterations=300,
        )
        out = {}
        for name, use_avx in (("avx512_model", True), ("default_model", False)):
            cfg = EarConfig(
                policy="min_time", use_explicit_ufs=False, use_avx512_model=use_avx
            )
            out[name] = compare(wl, {"x": cfg}, seeds=seeds, scale=scale)["x"]
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        "Ablation: AVX512 vs default model, min_time on an AVX512-dense kernel",
        ["model", "requested cpu GHz", "measured cpu GHz", "time pen"],
        [
            [
                name,
                ghz(c.runs_requested_cpu),
                ghz(c.result.avg_cpu_freq_ghz),
                pct(c.time_penalty),
            ]
            for name, c in res.items()
        ],
    )
    write_artefact(results_dir, "ablation_avx512.txt", rendered)
    # The default model chases a turbo speedup the silicon cannot
    # deliver; the AVX512 model knows the licence clamp and does not.
    assert res["default_model"].runs_requested_cpu > 2.45
    assert res["avx512_model"].runs_requested_cpu <= 2.4 + 1e-9
    # Measured clocks are identical — the silicon clamps both — which
    # is exactly why the un-aware model's request was futile.
    assert res["avx512_model"].result.avg_cpu_freq_ghz == pytest.approx(
        res["default_model"].result.avg_cpu_freq_ghz, abs=0.02
    )


def test_ablation_min_time_eufs(benchmark, results_dir, scale, seeds):
    """The paper's future work: min_time_to_solution with eUFS.

    min_time climbs CPU-bound codes to turbo (costing power); adding
    the guarded uncore descent claws back package power without
    surrendering the speedup.
    """

    def run():
        wl = bt_mz_c_openmp()
        return {
            "min_time": compare(
                wl,
                {"x": EarConfig(policy="min_time", use_explicit_ufs=False)},
                seeds=seeds,
                scale=scale,
            )["x"],
            "min_time_eufs": compare(
                wl,
                {"x": EarConfig(policy="min_time", use_explicit_ufs=True)},
                seeds=seeds,
                scale=scale,
            )["x"],
        }

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        "Ablation: min_time_to_solution with and without eUFS (BT-MZ.C)",
        ["config", "time pen", "power save", "cpu GHz", "imc GHz"],
        [
            [
                name,
                pct(c.time_penalty),
                pct(c.power_saving),
                ghz(c.result.avg_cpu_freq_ghz),
                ghz(c.result.avg_imc_freq_ghz),
            ]
            for name, c in res.items()
        ],
    )
    write_artefact(results_dir, "ablation_min_time.txt", rendered)
    mt, mte = res["min_time"], res["min_time_eufs"]
    # min_time speeds the CPU-bound kernel up (negative penalty)...
    assert mt.time_penalty < 0.005
    # ...and the eUFS stage recovers power relative to plain min_time
    assert mte.power_saving > mt.power_saving - 0.005
    assert mte.result.avg_imc_freq_ghz < mt.result.avg_imc_freq_ghz


def test_ablation_signature_change_threshold(benchmark, results_dir, scale, seeds):
    """Sensitivity of the 15 % phase-change tolerance.

    A very tight tolerance makes EARL re-run the policy continually on
    measurement noise; the paper's 15 % keeps it stable.  Measured as
    the number of policy invocations over a fixed run.
    """

    def run():
        wl = hpcg()
        if scale != 1.0:
            wl = wl.scaled_iterations(scale)
        counts = {}
        for th in (0.02, 0.15):
            r = run_workload(
                wl, ear_config=EarConfig(signature_change_th=th), seed=seeds[0]
            )
            node_policy_rounds = sum(
                1 for d in r.decisions if d.policy_state is not None
            )
            counts[th] = (node_policy_rounds, r.dc_energy_j)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        "Ablation: signature-change threshold on HPCG",
        ["threshold", "policy rounds", "energy (kJ)"],
        [
            [pct(th), str(rounds), f"{e / 1e3:.1f}"]
            for th, (rounds, e) in counts.items()
        ],
    )
    write_artefact(results_dir, "ablation_signature_th.txt", rendered)
    assert counts[0.02][0] >= counts[0.15][0]


def test_earl_runtime_overhead(benchmark, scale):
    """EARL is 'lightweight': the simulated-engine cost of running the
    full EARL stack per iteration (DynAIS + windows + policy) — a real
    pytest-benchmark timing target."""
    wl = synthetic_workload(
        node_config=bt_mz_c_openmp().node_config,
        core_share=0.85,
        unc_share=0.08,
        mem_share=0.05,
        n_iterations=200,
    )

    def run_with_earl():
        return run_workload(wl, ear_config=EarConfig(), seed=1)

    result = benchmark(run_with_earl)
    assert result.dc_energy_j > 0
