"""Figure 5: GROMACS(I) — HW-guided vs not-guided uncore search."""

from repro.ear.policies import PolicyState
from repro.experiments import figure5_gromacs1
from repro.experiments.report import format_figure_series

from .conftest import write_artefact


def test_figure5(benchmark, results_dir, scale, seeds):
    data = benchmark.pedantic(
        lambda: figure5_gromacs1(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    out = []
    for key, series in data.items():
        out.append(
            format_figure_series(f"Figure 5: GROMACS(I), {key}", series)
        )
    write_artefact(results_dir, "figure5.txt", "\n".join(out))

    for key, series in data.items():
        by_cfg = {s["config"]: s for s in series}
        # both explicit-UFS variants save at least as much as plain ME
        for variant in ("me_ngu", "me_eufs"):
            assert (
                by_cfg[variant]["energy_saving"]
                >= by_cfg["me"]["energy_saving"] - 0.01
            ), (key, variant)
        # and both settle at a similar final uncore frequency
        assert abs(
            by_cfg["me_eufs"]["avg_imc_ghz"] - by_cfg["me_ngu"]["avg_imc_ghz"]
        ) < 0.3, key


def test_figure5_guided_converges_faster(benchmark, results_dir, scale, seeds):
    """The point of HW guidance: fewer signature windows to READY."""
    from repro.ear.config import EarConfig
    from repro.sim.engine import run_workload
    from repro.workloads.applications import gromacs_ion_channel

    wl = gromacs_ion_channel()
    if scale != 1.0:
        wl = wl.scaled_iterations(scale)

    def rounds_until_ready(cfg):
        result = run_workload(wl, ear_config=cfg, seed=seeds[0])
        for i, d in enumerate(result.decisions):
            if d.policy_state is PolicyState.READY:
                return i + 1
        return len(result.decisions)

    def run():
        return (
            rounds_until_ready(EarConfig(cpu_policy_th=0.05)),
            rounds_until_ready(EarConfig(cpu_policy_th=0.05, hw_guided_imc=False)),
        )

    guided, not_guided = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nsignature windows until stable: HW-guided {guided}, "
        f"not guided {not_guided}"
    )
    assert guided <= not_guided
