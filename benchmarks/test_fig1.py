"""Figure 1: the motivation study's fixed-uncore sweeps."""

from repro.experiments import figure1
from repro.experiments.report import format_table, ghz, pct

from .conftest import write_artefact


def test_figure1(benchmark, results_dir, scale, seeds):
    sweeps = benchmark.pedantic(
        lambda: figure1(seeds=seeds, scale=scale), rounds=1, iterations=1
    )
    out = []
    for name, sweep in sweeps.items():
        out.append(
            format_table(
                f"Figure 1: {name} fixed-uncore sweep "
                f"(CPU pinned at {ghz(sweep.cpu_ghz)} GHz, HW-UFS reference "
                f"IMC {ghz(sweep.hw_reference_imc_ghz)} GHz)",
                ["uncore GHz", "time pen", "power save", "energy save", "GB/s pen"],
                [
                    [
                        ghz(p.uncore_ghz),
                        pct(p.time_penalty),
                        pct(p.power_saving),
                        pct(p.energy_saving),
                        pct(p.gbs_penalty),
                    ]
                    for p in sweep.points
                ],
            )
        )
    write_artefact(results_dir, "figure1.txt", "\n".join(out))

    bt, lu = sweeps["BT-MZ"], sweeps["LU"]
    # Power saving grows monotonically as the uncore descends
    for sweep in (bt, lu):
        savings = [p.power_saving for p in sweep.points]
        assert all(b >= a - 1e-3 for a, b in zip(savings, savings[1:]))
    # BT-MZ: saving dominates penalty across the whole range
    assert all(p.power_saving >= p.time_penalty - 1e-3 for p in bt.points)
    # LU: the energy curve peaks and then decays (the paper's
    # "at lowest uncore frequencies the time penalty outweighs
    # energy saving")
    lu_savings = [p.energy_saving for p in lu.points]
    assert lu_savings[-1] < max(lu_savings)
    # LU pays much more time than BT at the floor
    assert lu.points[-1].time_penalty > 2 * bt.points[-1].time_penalty
