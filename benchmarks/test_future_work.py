"""Benches for the paper's future-work directions (section VIII).

The paper closes with three open items: integrating eUFS into
min_time_to_solution, strategies that *increase* the uncore frequency,
and the impact on communication-intensive applications.  All three are
implemented in this reproduction; these benches quantify them.
"""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.report import format_table, ghz, pct
from repro.experiments.runner import compare
from repro.hw.node import SD530
from repro.sim.engine import run_workload
from repro.workloads.generator import communication_workload, synthetic_workload

from .conftest import write_artefact


def test_communication_intensity_sweep(benchmark, results_dir, scale, seeds):
    """eUFS benefit as a function of MPI time share.

    "We are also evaluating the potential impact on high communication
    intensive applications" — the sweep shows the impact is *positive*
    and growing: MPI spin time neither needs the uncore nor shows up in
    the CPI/GB/s guards, so the descent reaches deeper while the
    penalty stays bounded by the compute share.
    """

    def run():
        rows = []
        for cf in (0.0, 0.15, 0.3, 0.45, 0.6, 0.75):
            wl = communication_workload(
                comm_fraction=cf, node_config=SD530, n_nodes=2, n_iterations=300
            )
            if scale != 1.0:
                wl = wl.scaled_iterations(scale)
            cmp_ = compare(wl, {"me_eufs": EarConfig()}, seeds=seeds, scale=1.0)
            c = cmp_["me_eufs"]
            rows.append(
                {
                    "comm": cf,
                    "time_penalty": c.time_penalty,
                    "power_saving": c.power_saving,
                    "energy_saving": c.energy_saving,
                    "imc": c.result.avg_imc_freq_ghz,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        "Future work: ME+eU benefit vs communication intensity",
        ["MPI share", "time pen", "power save", "energy save", "imc GHz"],
        [
            [
                pct(r["comm"]),
                pct(r["time_penalty"]),
                pct(r["power_saving"]),
                pct(r["energy_saving"]),
                ghz(r["imc"]),
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "future_comm_sweep.txt", rendered)

    # benefit grows with communication intensity...
    assert rows[-1]["energy_saving"] > rows[0]["energy_saving"] + 0.01
    # ...the uncore descends further...
    assert rows[-1]["imc"] < rows[0]["imc"] - 0.1
    # ...and the time penalty never exceeds the guard budget
    for r in rows:
        assert r["time_penalty"] < 0.05


def test_uncore_increase_strategy(benchmark, results_dir, scale, seeds):
    """min_time's upward uncore search under a conservative site cap.

    A memory-bound job on a cluster whose ear.conf caps the default
    uncore at 1.8 GHz: min_energy lives with the cap, min_time walks
    the ceiling back up and recovers most of the lost time.
    """

    def run():
        wl = synthetic_workload(
            name="capped-membound",
            node_config=SD530,
            core_share=0.12,
            unc_share=0.2,
            mem_share=0.6,
            n_iterations=300,
        )
        if scale != 1.0:
            wl = wl.scaled_iterations(scale)
        out = {}
        for name, cfg in (
            ("uncapped", EarConfig(policy="min_time")),
            ("capped min_energy", EarConfig(policy="min_energy", default_imc_max_ghz=1.8)),
            ("capped min_time", EarConfig(policy="min_time", default_imc_max_ghz=1.8)),
        ):
            runs = [run_workload(wl, ear_config=cfg, seed=s) for s in seeds]
            out[name] = (
                sum(r.time_s for r in runs) / len(runs),
                sum(r.avg_imc_freq_ghz for r in runs) / len(runs),
            )
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        "Future work: uncore-increase strategy under a 1.8 GHz site cap",
        ["config", "time (s)", "avg imc GHz"],
        [[name, f"{t:.1f}", ghz(imc)] for name, (t, imc) in res.items()],
    )
    write_artefact(results_dir, "future_uncore_increase.txt", rendered)

    t_uncapped, _ = res["uncapped"]
    t_me, imc_me = res["capped min_energy"]
    t_mt, imc_mt = res["capped min_time"]
    # min_time recovers a large part of the cap's slowdown
    assert t_mt < t_me
    assert (t_me - t_mt) / (t_me - t_uncapped) > 0.5
    assert imc_mt > imc_me + 0.2
