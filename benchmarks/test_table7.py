"""Table VII: DC node vs RAPL package power savings."""

from repro.experiments import paper_data, table7_dc_vs_pck
from repro.experiments.report import format_table, pct

from .conftest import write_artefact


def test_table7(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table7_dc_vs_pck(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )
    rendered = format_table(
        "Table VII: DC node vs RAPL PCK power savings under ME+eU "
        "(paper values in parentheses)",
        ["application", "DC saving", "PCK saving"],
        [
            [
                r["application"],
                f"{pct(r['dc_saving'])} ({pct(paper_data.TABLE7[r['application']]['dc_saving'])})",
                f"{pct(r['pck_saving'])} ({pct(paper_data.TABLE7[r['application']]['pck_saving'])})",
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table7.txt", rendered)

    # The paper's methodological point, in two assertions:
    gaps = []
    for r in rows:
        # 1. judging by the package overstates every saving
        assert r["pck_saving"] > r["dc_saving"], r["application"]
        gaps.append(r["pck_saving"] - r["dc_saving"])
    # 2. and not by a constant factor, so no fixup could recover DC truth
    assert max(gaps) - min(gaps) > 0.002
