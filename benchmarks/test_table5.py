"""Table V: MPI application characteristics at nominal frequency."""

import pytest

from repro.experiments import paper_data, table5_application_characteristics
from repro.experiments.report import format_table

from .conftest import write_artefact


def test_table5(benchmark, results_dir, scale, seeds):
    rows = benchmark.pedantic(
        lambda: table5_application_characteristics(seeds=seeds, scale=scale),
        rounds=1,
        iterations=1,
    )
    rendered = format_table(
        "Table V: MPI applications (paper values in parentheses)",
        ["application", "time (s)", "CPI", "GB/s", "DC power (W)"],
        [
            [
                r["application"],
                f"{r['time_s']:.0f} ({paper_data.TABLE5[r['application']]['time_s']:.0f})",
                f"{r['cpi']:.2f} ({paper_data.TABLE5[r['application']]['cpi']:.2f})",
                f"{r['gbs']:.1f} ({paper_data.TABLE5[r['application']]['gbs']:.1f})",
                f"{r['dc_power_w']:.0f} ({paper_data.TABLE5[r['application']]['dc_power_w']:.0f})",
            ]
            for r in rows
        ],
    )
    write_artefact(results_dir, "table5.txt", rendered)

    for r in rows:
        expected = paper_data.TABLE5[r["application"]]
        assert r["cpi"] == pytest.approx(expected["cpi"], rel=0.1)
        assert r["gbs"] == pytest.approx(expected["gbs"], rel=0.15)
        assert r["dc_power_w"] == pytest.approx(expected["dc_power_w"], rel=0.1)
        if scale == 1.0:
            assert r["time_s"] == pytest.approx(expected["time_s"], rel=0.1)
