"""Extension bench: explicit UFS under a RAPL package power cap.

Not in the paper's evaluation, but a direct consequence of its
mechanism worth quantifying: when the package is power-limited, uncore
watts and core watts come from the same budget.  A policy that trims
uncore power a CPU-bound code doesn't need hands that budget to the
cores — so under a cap, explicit UFS improves *performance*, not just
energy.

The cluster-scale generalisation of this what-if — jobs bidding for a
shared power budget, the uncore ladder as the first compliance tool —
is the power market (``repro.cluster.market``, bench
``test_region_market.py``, derivation in docs/POLICIES.md).
"""

import pytest

from repro.ear.config import EarConfig
from repro.experiments.report import format_table, ghz, pct
from repro.sim.engine import SimulationEngine
from repro.workloads.kernels import bt_mz_c_openmp

from .conftest import write_artefact

CAP_W = 105.0


def _run(wl, ear_config, seed, cap_w):
    engine = SimulationEngine(wl, ear_config=ear_config, seed=seed)
    for node in engine.cluster:
        node.set_pkg_power_limit(cap_w, privileged=True)
    return engine.run()


def test_powercap_eufs_interaction(benchmark, results_dir, scale, seeds):
    def run():
        wl = bt_mz_c_openmp()
        if scale != 1.0:
            wl = wl.scaled_iterations(scale)
        out = {}
        for name, cfg in (
            ("capped, ME", EarConfig(use_explicit_ufs=False)),
            ("capped, ME+eU", EarConfig()),
        ):
            runs = [_run(wl, cfg, s, CAP_W) for s in seeds]
            n = len(runs)
            out[name] = (
                sum(r.time_s for r in runs) / n,
                sum(r.avg_dc_power_w for r in runs) / n,
                sum(r.avg_cpu_freq_ghz for r in runs) / n,
                sum(r.avg_imc_freq_ghz for r in runs) / n,
            )
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = format_table(
        f"Extension: BT-MZ.C under a {CAP_W:.0f} W/socket RAPL cap",
        ["config", "time (s)", "DC power (W)", "cpu GHz", "imc GHz"],
        [
            [name, f"{t:.1f}", f"{p:.1f}", ghz(cpu), ghz(imc)]
            for name, (t, p, cpu, imc) in res.items()
        ],
    )
    write_artefact(results_dir, "powercap_eufs.txt", rendered)

    t_me, _, cpu_me, _ = res["capped, ME"]
    t_eu, _, cpu_eu, imc_eu = res["capped, ME+eU"]
    # the descent freed package budget: the cores clock higher and the
    # kernel finishes sooner despite the identical cap
    assert cpu_eu > cpu_me + 0.03
    assert t_eu < t_me
    assert imc_eu < 2.2
